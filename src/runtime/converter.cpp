#include "runtime/converter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace mn::rt {

namespace {

// Consumer list per node id.
std::vector<std::vector<int>> build_consumers(nn::Graph& g) {
  std::vector<std::vector<int>> consumers(static_cast<size_t>(g.num_nodes()));
  for (int id = 0; id < g.num_nodes(); ++id)
    for (int in : g.node(id).inputs())
      consumers[static_cast<size_t>(in)].push_back(id);
  return consumers;
}

struct BlobBuilder {
  std::vector<uint8_t> blob;

  int64_t append(const void* data, int64_t bytes, int64_t align) {
    while (static_cast<int64_t>(blob.size()) % align != 0) blob.push_back(0);
    const int64_t off = static_cast<int64_t>(blob.size());
    const auto* b = static_cast<const uint8_t*>(data);
    blob.insert(blob.end(), b, b + bytes);
    return off;
  }
};

class Converter {
 public:
  Converter(nn::Graph& g, const ConvertOptions& opt, const RangeMap* cal)
      : g_(g), opt_(opt), cal_(cal), consumers_(build_consumers(g)) {}

  ModelDef run();

 private:
  // The sole consumer of `id`, or -1 if fan-out != 1.
  int sole_consumer(int id) const {
    const auto& c = consumers_[static_cast<size_t>(id)];
    return c.size() == 1 ? c[0] : -1;
  }

  // Activation range for chain-end node `id`: FakeQuant EMA range if the
  // node is a FakeQuant, else calibration entry.
  std::pair<float, float> range_of(int id) const {
    if (auto* fq = dynamic_cast<nn::FakeQuant*>(&g_.node(id)); fq != nullptr) {
      if (!fq->calibrated())
        throw std::runtime_error("convert: FakeQuant " + fq->name() + " uncalibrated");
      return {fq->range_min(), fq->range_max()};
    }
    if (cal_ != nullptr) {
      auto it = cal_->find(id);
      if (it != cal_->end()) return it->second;
    }
    throw std::runtime_error("convert: no activation range for node " +
                             g_.node(id).name() + "; run QAT or pass calibration");
  }

  int new_activation_tensor(const std::string& name, Shape shape,
                            std::pair<float, float> range) {
    TensorDef t;
    t.name = name;
    t.shape = shape;
    t.bits = opt_.act_bits;
    t.qp = quant::choose_asymmetric(range.first, range.second, opt_.act_bits);
    model_.tensors.push_back(std::move(t));
    return static_cast<int>(model_.tensors.size()) - 1;
  }

  int new_passthrough_tensor(const std::string& name, Shape shape,
                             const quant::QuantParams& qp) {
    TensorDef t;
    t.name = name;
    t.shape = shape;
    t.bits = opt_.act_bits;
    t.qp = qp;
    model_.tensors.push_back(std::move(t));
    return static_cast<int>(model_.tensors.size()) - 1;
  }

  // Emits a conv-like op, splitting off its activation as a standalone
  // unit-window clamp op in naive mode (fuse_activations == false). The
  // intermediate shares the output's quantization, so the producer's requant
  // arithmetic is untouched and the split is bit-identical to the fused
  // form: conv-with-act clamps to activation_range(act), and the unit pool
  // applies exactly that clamp. MaxPool carries the clamp for 8-bit; int4
  // (which has no max-pool kernel) uses the identity unit AvgPool.
  void push_conv_like(OpDef op, const std::string& name, Shape out_shape) {
    if (opt_.fuse_activations || op.act == Activation::kNone ||
        out_shape.rank() != 3) {
      model_.ops.push_back(op);
      return;
    }
    const int out_t = op.output;
    const quant::QuantParams qp =
        model_.tensors[static_cast<size_t>(out_t)].qp;
    const int mid_t = new_passthrough_tensor(name + "/preact", out_shape, qp);
    OpDef clamp;
    clamp.type = opt_.act_bits == 4 ? OpType::kAvgPool2D : OpType::kMaxPool2D;
    clamp.act = op.act;
    clamp.inputs = {mid_t};
    clamp.output = out_t;
    clamp.kh = 1;
    clamp.kw = 1;
    clamp.stride = 1;
    op.act = Activation::kNone;
    op.output = mid_t;
    model_.ops.push_back(op);
    model_.ops.push_back(clamp);
  }

  // Quantizes folded weights per output channel and appends to the blob.
  // `rows` = out channels, `cols` = weights per channel (contiguous).
  int add_weight_tensor(const std::string& name, Shape shape, const TensorF& w,
                        int64_t rows, int64_t cols, std::vector<float>* scales_out) {
    TensorDef t;
    t.name = name;
    t.shape = shape;
    t.bits = opt_.weight_bits;
    t.is_const = true;
    const quant::QRange qr = quant::qrange(opt_.weight_bits);
    TensorI8 q(shape);
    t.channel_scales.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      float maxabs = 1e-8f;
      for (int64_t c = 0; c < cols; ++c)
        maxabs = std::max(maxabs, std::abs(w[r * cols + c]));
      const float scale = maxabs / static_cast<float>(qr.qmax);
      t.channel_scales[static_cast<size_t>(r)] = scale;
      for (int64_t c = 0; c < cols; ++c) {
        const int32_t v = static_cast<int32_t>(std::lround(w[r * cols + c] / scale));
        q[r * cols + c] = static_cast<int8_t>(std::clamp(v, qr.qmin, qr.qmax));
      }
    }
    if (opt_.weight_bits == 4) {
      const auto packed = quant::pack_int4(q);
      t.blob_offset = blob_.append(packed.data(), static_cast<int64_t>(packed.size()), 1);
    } else {
      t.blob_offset = blob_.append(q.data(), q.size(), 1);
    }
    *scales_out = t.channel_scales;
    model_.tensors.push_back(std::move(t));
    return static_cast<int>(model_.tensors.size()) - 1;
  }

  // Depthwise weights quantize per channel where channels are the *last*
  // axis of [1, kh, kw, C] (strided access).
  int add_dw_weight_tensor(const std::string& name, const TensorF& w,
                           std::vector<float>* scales_out) {
    const int64_t kh = w.shape().dim(1), kw = w.shape().dim(2), C = w.shape().dim(3);
    TensorDef t;
    t.name = name;
    t.shape = w.shape();
    t.bits = opt_.weight_bits;
    t.is_const = true;
    const quant::QRange qr = quant::qrange(opt_.weight_bits);
    TensorI8 q(w.shape());
    t.channel_scales.resize(static_cast<size_t>(C));
    for (int64_t c = 0; c < C; ++c) {
      float maxabs = 1e-8f;
      for (int64_t k = 0; k < kh * kw; ++k)
        maxabs = std::max(maxabs, std::abs(w[k * C + c]));
      const float scale = maxabs / static_cast<float>(qr.qmax);
      t.channel_scales[static_cast<size_t>(c)] = scale;
      for (int64_t k = 0; k < kh * kw; ++k) {
        const int32_t v = static_cast<int32_t>(std::lround(w[k * C + c] / scale));
        q[k * C + c] = static_cast<int8_t>(std::clamp(v, qr.qmin, qr.qmax));
      }
    }
    if (opt_.weight_bits == 4) {
      const auto packed = quant::pack_int4(q);
      t.blob_offset = blob_.append(packed.data(), static_cast<int64_t>(packed.size()), 1);
    } else {
      t.blob_offset = blob_.append(q.data(), q.size(), 1);
    }
    *scales_out = t.channel_scales;
    model_.tensors.push_back(std::move(t));
    return static_cast<int>(model_.tensors.size()) - 1;
  }

  int add_bias_tensor(const std::string& name, const TensorF& bias,
                      float in_scale, const std::vector<float>& w_scales) {
    const int64_t n = bias.size();
    std::vector<int32_t> q(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const double s = static_cast<double>(in_scale) *
                       w_scales[w_scales.size() == 1 ? 0 : static_cast<size_t>(i)];
      q[static_cast<size_t>(i)] = static_cast<int32_t>(std::llround(bias[i] / s));
    }
    TensorDef t;
    t.name = name;
    t.shape = Shape{n};
    t.bits = 32;
    t.is_const = true;
    t.blob_offset = blob_.append(q.data(), n * 4, 4);
    model_.tensors.push_back(std::move(t));
    return static_cast<int>(model_.tensors.size()) - 1;
  }

  // Follows the fusion chain conv -> [BN] -> [Relu] -> [FakeQuant]; returns
  // the chain-end node id, the BN (if any), and the fused activation.
  struct Chain {
    int end;
    nn::BatchNorm* bn = nullptr;
    Activation act = Activation::kNone;
  };
  Chain follow_chain(int id) {
    Chain ch{id, nullptr, Activation::kNone};
    int cur = id;
    // Optional BatchNorm.
    int next = sole_consumer(cur);
    if (next >= 0)
      if (auto* bn = dynamic_cast<nn::BatchNorm*>(&g_.node(next)); bn != nullptr) {
        ch.bn = bn;
        consumed_[static_cast<size_t>(next)] = true;
        cur = next;
        next = sole_consumer(cur);
      }
    if (next >= 0)
      if (auto* relu = dynamic_cast<nn::Relu*>(&g_.node(next)); relu != nullptr) {
        ch.act = relu->cap() > 0.f ? Activation::kRelu6 : Activation::kRelu;
        consumed_[static_cast<size_t>(next)] = true;
        cur = next;
        next = sole_consumer(cur);
      }
    if (next >= 0)
      if (dynamic_cast<nn::FakeQuant*>(&g_.node(next)) != nullptr) {
        consumed_[static_cast<size_t>(next)] = true;
        cur = next;
      }
    ch.end = cur;
    return ch;
  }

  nn::Graph& g_;
  ConvertOptions opt_;
  const RangeMap* cal_;
  std::vector<std::vector<int>> consumers_;
  std::vector<bool> consumed_;
  std::vector<int> node_tensor_;  // nn node id -> runtime tensor id
  ModelDef model_;
  BlobBuilder blob_;
};

ModelDef Converter::run() {
  consumed_.assign(static_cast<size_t>(g_.num_nodes()), false);
  node_tensor_.assign(static_cast<size_t>(g_.num_nodes()), -1);
  model_.name = opt_.name;

  for (int id = 0; id < g_.num_nodes(); ++id) {
    if (consumed_[static_cast<size_t>(id)]) continue;
    nn::Node& node = g_.node(id);
    const Shape out_shape = g_.feature_shape(id);

    if (auto* in = dynamic_cast<nn::InputNode*>(&node); in != nullptr) {
      // Input (+ optional FakeQuant giving the input range).
      int end = id;
      const int next = sole_consumer(id);
      if (next >= 0 && dynamic_cast<nn::FakeQuant*>(&g_.node(next)) != nullptr) {
        consumed_[static_cast<size_t>(next)] = true;
        end = next;
      }
      const int t = new_activation_tensor("input", in->feature_shape(), range_of(end));
      model_.input_tensor = t;
      node_tensor_[static_cast<size_t>(id)] = t;
      node_tensor_[static_cast<size_t>(end)] = t;
      continue;
    }

    if (auto* conv = dynamic_cast<nn::Conv2D*>(&node); conv != nullptr) {
      const int in_id = node.inputs()[0];
      const int in_t = node_tensor_[static_cast<size_t>(in_id)];
      Chain ch = follow_chain(id);
      // Fold BN: w'[oc,...] = w * gamma/sqrt(var+eps); b' = beta - gamma*mean/sqrt.
      const auto& opt = conv->options();
      TensorF w = conv->weight().value;
      TensorF b(Shape{opt.out_channels}, 0.f);
      if (conv->bias() != nullptr) b = conv->bias()->value;
      if (ch.bn != nullptr) {
        const int64_t per = w.size() / opt.out_channels;
        for (int64_t oc = 0; oc < opt.out_channels; ++oc) {
          const float s = ch.bn->gamma().value[oc] /
                          std::sqrt(ch.bn->running_var()[oc] + ch.bn->eps());
          for (int64_t k = 0; k < per; ++k) w[oc * per + k] *= s;
          b[oc] = b[oc] * s + ch.bn->beta().value[oc] -
                  ch.bn->running_mean()[oc] * s;
        }
      }
      std::vector<float> w_scales;
      const int w_t = add_weight_tensor(node.name() + "/w", w.shape(), w,
                                        opt.out_channels,
                                        w.size() / opt.out_channels, &w_scales);
      const float in_scale = model_.tensors[static_cast<size_t>(in_t)].qp.scale;
      const int b_t = add_bias_tensor(node.name() + "/b", b, in_scale, w_scales);
      const int out_t =
          new_activation_tensor(node.name() + "/out", out_shape, range_of(ch.end));
      OpDef op;
      op.type = OpType::kConv2D;
      op.act = ch.act;
      op.inputs = {in_t, w_t, b_t};
      op.output = out_t;
      op.stride = static_cast<int32_t>(opt.stride);
      const Shape in_shape = g_.feature_shape(in_id);
      op.pad_h = static_cast<int32_t>(
          nn::conv_pad_total(in_shape.dim(0), opt.kh, opt.stride, opt.padding) / 2);
      op.pad_w = static_cast<int32_t>(
          nn::conv_pad_total(in_shape.dim(1), opt.kw, opt.stride, opt.padding) / 2);
      push_conv_like(op, node.name(), out_shape);
      node_tensor_[static_cast<size_t>(id)] = out_t;
      node_tensor_[static_cast<size_t>(ch.end)] = out_t;
      continue;
    }

    if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(&node); dw != nullptr) {
      const int in_id = node.inputs()[0];
      const int in_t = node_tensor_[static_cast<size_t>(in_id)];
      Chain ch = follow_chain(id);
      const auto& opt = dw->options();
      const int64_t C = dw->channels();
      TensorF w = dw->weight().value;  // [1, kh, kw, C]
      TensorF b(Shape{C}, 0.f);
      if (dw->bias() != nullptr) b = dw->bias()->value;
      if (ch.bn != nullptr) {
        const int64_t kk = opt.kh * opt.kw;
        for (int64_t c = 0; c < C; ++c) {
          const float s = ch.bn->gamma().value[c] /
                          std::sqrt(ch.bn->running_var()[c] + ch.bn->eps());
          for (int64_t k = 0; k < kk; ++k) w[k * C + c] *= s;
          b[c] = b[c] * s + ch.bn->beta().value[c] - ch.bn->running_mean()[c] * s;
        }
      }
      std::vector<float> w_scales;
      const int w_t = add_dw_weight_tensor(node.name() + "/w", w, &w_scales);
      const float in_scale = model_.tensors[static_cast<size_t>(in_t)].qp.scale;
      const int b_t = add_bias_tensor(node.name() + "/b", b, in_scale, w_scales);
      const int out_t =
          new_activation_tensor(node.name() + "/out", out_shape, range_of(ch.end));
      OpDef op;
      op.type = OpType::kDepthwiseConv2D;
      op.act = ch.act;
      op.inputs = {in_t, w_t, b_t};
      op.output = out_t;
      op.stride = static_cast<int32_t>(opt.stride);
      const Shape in_shape = g_.feature_shape(in_id);
      op.pad_h = static_cast<int32_t>(
          nn::conv_pad_total(in_shape.dim(0), opt.kh, opt.stride, opt.padding) / 2);
      op.pad_w = static_cast<int32_t>(
          nn::conv_pad_total(in_shape.dim(1), opt.kw, opt.stride, opt.padding) / 2);
      push_conv_like(op, node.name(), out_shape);
      node_tensor_[static_cast<size_t>(id)] = out_t;
      node_tensor_[static_cast<size_t>(ch.end)] = out_t;
      continue;
    }

    if (auto* fc = dynamic_cast<nn::Dense*>(&node); fc != nullptr) {
      const int in_id = node.inputs()[0];
      const int in_t = node_tensor_[static_cast<size_t>(in_id)];
      Chain ch = follow_chain(id);
      TensorF w = fc->weight().value;  // [out, in]
      TensorF b(Shape{fc->out_features()}, 0.f);
      if (fc->bias() != nullptr) b = fc->bias()->value;
      if (ch.bn != nullptr) {
        for (int64_t o = 0; o < fc->out_features(); ++o) {
          const float s = ch.bn->gamma().value[o] /
                          std::sqrt(ch.bn->running_var()[o] + ch.bn->eps());
          for (int64_t i = 0; i < fc->in_features(); ++i)
            w[o * fc->in_features() + i] *= s;
          b[o] = b[o] * s + ch.bn->beta().value[o] - ch.bn->running_mean()[o] * s;
        }
      }
      std::vector<float> w_scales;
      const int w_t = add_weight_tensor(node.name() + "/w", w.shape(), w,
                                        fc->out_features(), fc->in_features(),
                                        &w_scales);
      const float in_scale = model_.tensors[static_cast<size_t>(in_t)].qp.scale;
      const int b_t = add_bias_tensor(node.name() + "/b", b, in_scale, w_scales);
      const int out_t =
          new_activation_tensor(node.name() + "/out", out_shape, range_of(ch.end));
      OpDef op;
      op.type = OpType::kFullyConnected;
      op.act = ch.act;
      op.inputs = {in_t, w_t, b_t};
      op.output = out_t;
      model_.ops.push_back(op);
      node_tensor_[static_cast<size_t>(id)] = out_t;
      node_tensor_[static_cast<size_t>(ch.end)] = out_t;
      continue;
    }

    if (dynamic_cast<nn::Add*>(&node) != nullptr) {
      const int a_t = node_tensor_[static_cast<size_t>(node.inputs()[0])];
      const int b_t = node_tensor_[static_cast<size_t>(node.inputs()[1])];
      Chain ch = follow_chain(id);
      if (ch.bn != nullptr) throw std::runtime_error("convert: BN after Add unsupported");
      const int out_t =
          new_activation_tensor(node.name() + "/out", out_shape, range_of(ch.end));
      OpDef op;
      op.type = OpType::kAdd;
      op.act = ch.act;
      op.inputs = {a_t, b_t};
      op.output = out_t;
      model_.ops.push_back(op);
      node_tensor_[static_cast<size_t>(id)] = out_t;
      node_tensor_[static_cast<size_t>(ch.end)] = out_t;
      continue;
    }

    const bool is_gap = dynamic_cast<nn::GlobalAvgPool*>(&node) != nullptr;
    auto* avgp = dynamic_cast<nn::AvgPool2D*>(&node);
    auto* maxp = dynamic_cast<nn::MaxPool2D*>(&node);
    if (is_gap || avgp != nullptr || maxp != nullptr) {
      const int in_id = node.inputs()[0];
      const int in_t = node_tensor_[static_cast<size_t>(in_id)];
      const Shape in_shape = g_.feature_shape(in_id);
      // Pools pass quantization through unchanged (TFLite semantics); any
      // trailing FakeQuant is absorbed.
      const int next = sole_consumer(id);
      int end = id;
      if (next >= 0 && dynamic_cast<nn::FakeQuant*>(&g_.node(next)) != nullptr) {
        consumed_[static_cast<size_t>(next)] = true;
        end = next;
      }
      const int out_t = new_passthrough_tensor(
          node.name() + "/out", out_shape,
          model_.tensors[static_cast<size_t>(in_t)].qp);
      OpDef op;
      op.type = maxp != nullptr ? OpType::kMaxPool2D : OpType::kAvgPool2D;
      op.inputs = {in_t};
      op.output = out_t;
      if (is_gap) {
        op.kh = static_cast<int32_t>(in_shape.dim(0));
        op.kw = static_cast<int32_t>(in_shape.dim(1));
        op.stride = 1;
      } else {
        const nn::Pool2DOptions& po = avgp != nullptr ? avgp->options() : maxp->options();
        op.kh = static_cast<int32_t>(po.kh);
        op.kw = static_cast<int32_t>(po.kw);
        op.stride = static_cast<int32_t>(po.stride);
        op.pad_h = static_cast<int32_t>(
            nn::conv_pad_total(in_shape.dim(0), po.kh, po.stride, po.padding) / 2);
        op.pad_w = static_cast<int32_t>(
            nn::conv_pad_total(in_shape.dim(1), po.kw, po.stride, po.padding) / 2);
      }
      model_.ops.push_back(op);
      node_tensor_[static_cast<size_t>(id)] = out_t;
      node_tensor_[static_cast<size_t>(end)] = out_t;
      continue;
    }

    if (dynamic_cast<nn::FakeQuant*>(&node) != nullptr) {
      // Standalone FakeQuant: annotation only; alias the producer's tensor.
      node_tensor_[static_cast<size_t>(id)] =
          node_tensor_[static_cast<size_t>(node.inputs()[0])];
      continue;
    }

    throw std::runtime_error("convert: unsupported node type at " + node.name());
  }

  int out_t = node_tensor_[static_cast<size_t>(g_.output_id())];
  if (opt_.append_softmax) {
    if (opt_.act_bits != 8)
      throw std::runtime_error("convert: softmax requires 8-bit activations");
    const Shape logits_shape = model_.tensors[static_cast<size_t>(out_t)].shape;
    TensorDef t;
    t.name = "softmax_out";
    t.shape = logits_shape;
    t.bits = 8;
    t.qp = {1.f / 256.f, -128};
    model_.tensors.push_back(std::move(t));
    const int sm_t = static_cast<int>(model_.tensors.size()) - 1;
    OpDef op;
    op.type = OpType::kSoftmax;
    op.inputs = {out_t};
    op.output = sm_t;
    model_.ops.push_back(op);
    out_t = sm_t;
  }
  model_.output_tensor = out_t;
  model_.weights_blob = std::move(blob_.blob);
  model_.validate();
  return model_;
}

}  // namespace

RangeMap calibrate_ranges(nn::Graph& graph, const TensorF& sample_batch) {
  graph.forward(sample_batch, /*training=*/false);
  RangeMap ranges;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const TensorF& a = graph.activation(id);
    if (a.empty()) continue;
    float lo = a[0], hi = a[0];
    for (int64_t i = 0; i < a.size(); ++i) {
      lo = std::min(lo, a[i]);
      hi = std::max(hi, a[i]);
    }
    ranges[id] = {lo, hi};
  }
  return ranges;
}

ModelDef convert(nn::Graph& graph, const ConvertOptions& opt,
                 const RangeMap* calibration) {
  Converter c(graph, opt, calibration);
  return c.run();
}

}  // namespace mn::rt
