// ModelDef: the serialized inference-graph format executed by the
// Interpreter — the analog of a TFLite flatbuffer consumed by TFLM.
//
// Weights/biases live in a single blob (mapped to MCU eFlash); activation
// tensors are planned into the SRAM arena by the memory planner. The
// serialized byte size of a ModelDef is the "Model Size" metric reported in
// the paper's tables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "quant/quant.hpp"
#include "runtime/rt_error.hpp"
#include "tensor/shape.hpp"

namespace mn::rt {

enum class OpType : uint8_t {
  kConv2D = 0,
  kDepthwiseConv2D = 1,
  kFullyConnected = 2,
  kAvgPool2D = 3,
  kMaxPool2D = 4,
  kAdd = 5,
  kSoftmax = 6,
  // Keep last. Every dispatch switch carries a static_assert against this
  // (same pattern as serve::outcome_name), so adding an op type fails to
  // compile until the parser, interpreter, perf model and compiler passes
  // are all updated.
  kOpTypeCount,
};

enum class Activation : uint8_t {
  kNone = 0,
  kRelu = 1,
  kRelu6 = 2,
  kActivationCount,  // keep last; see OpType::kOpTypeCount
};

const char* op_type_name(OpType t);
const char* activation_name(Activation a);

// Fused-activation clamp bounds in the quantized domain: the [min, max] the
// kernels clamp an op's outputs to for `act` at the output tensor's
// quantization. Shared by the interpreter (requant preparation) and the
// graph compiler (activation-fusion legality: a standalone clamp op is
// foldable iff its transfer function equals clamp to one of these ranges).
void activation_range(Activation act, const quant::QuantParams& out_qp,
                      int bits, int32_t* act_min, int32_t* act_max);

struct TensorDef {
  std::string name;
  Shape shape;                 // per-image shape (no batch dimension)
  quant::QuantParams qp;       // per-tensor quantization
  std::vector<float> channel_scales;  // per-channel weight scales (optional)
  int bits = 8;                // 8 or 4 (packed) for int8/int4; 32 for bias
  bool is_const = false;       // stored in the weights blob (eFlash)
  int64_t blob_offset = -1;    // byte offset into weights_blob when is_const

  int64_t elements() const { return shape.elements(); }
  // Storage footprint in bytes (packed for int4, 4 bytes/elem for bias).
  int64_t storage_bytes() const {
    if (bits == 32) return elements() * 4;
    if (bits == 4) return (elements() + 1) / 2;
    return elements();
  }
};

struct OpDef {
  OpType type = OpType::kConv2D;
  Activation act = Activation::kNone;
  // Tensor ids. Conv/FC: {input, weights, bias(optional, -1 if none)};
  // pools/softmax: {input}; add: {a, b}.
  std::vector<int> inputs;
  int output = -1;
  int32_t stride = 1;
  int32_t kh = 0, kw = 0;      // pooling window (convs derive from weights)
  int32_t pad_h = 0, pad_w = 0;

  int64_t macs(const std::vector<TensorDef>& tensors) const;
  // Op count with the paper's convention: 1 MAC = 2 ops; pools/add/softmax
  // count one op per output element.
  int64_t op_count(const std::vector<TensorDef>& tensors) const;
};

struct ModelDef {
  std::string name;
  std::vector<TensorDef> tensors;
  std::vector<OpDef> ops;
  int input_tensor = -1;
  int output_tensor = -1;
  std::vector<uint8_t> weights_blob;

  // --- size accounting -----------------------------------------------------
  int64_t weights_bytes() const { return static_cast<int64_t>(weights_blob.size()); }
  // Graph-definition overhead of the serialized model (header + op/tensor
  // metadata records), the flatbuffer-structure analog.
  int64_t graph_def_bytes() const;
  // Total serialized model size ("Model Size (KB)" in the paper's tables).
  int64_t flatbuffer_bytes() const { return weights_bytes() + graph_def_bytes(); }
  // Total op count of one inference (1 MAC = 2 ops).
  int64_t total_ops() const;
  int64_t total_macs() const;

  // --- serialization ---------------------------------------------------------
  // On-disk format versions. V1 ("MNM1") is the original CRC-less layout; V2
  // ("MNM2") prepends CRC32s of the graph metadata and the weights blob so
  // corrupted OTA images / aged flash are rejected at load. serialize() always
  // writes the current version; both versions deserialize.
  static constexpr uint32_t kMagicV1 = 0x314D4E4D;  // "MNM1"
  static constexpr uint32_t kMagicV2 = 0x324D4E4D;  // "MNM2"

  std::vector<uint8_t> serialize() const;
  // Legacy V1 writer, kept so version-compatibility can be exercised (old
  // images in the field must keep loading after the format bump).
  std::vector<uint8_t> serialize_legacy_v1() const;

  // Hardened no-throw parser: every read is bounds-checked, absurd counts are
  // rejected before any allocation, and V2 CRCs are verified. Any malformed
  // input yields a typed RtError — never a crash, hang, or giant allocation.
  static Expected<ModelDef> try_deserialize(std::span<const uint8_t> bytes);
  static ModelDef deserialize(const std::vector<uint8_t>& bytes);

  void save(const std::string& path) const;
  static Expected<ModelDef> try_load(const std::string& path);
  static ModelDef load(const std::string& path);

  // CRC32 over the weights blob — the value embedded in V2 images and
  // re-checked by the Interpreter's optional per-invoke integrity scan.
  uint32_t weights_crc() const;

  // CRC32 over the *entire* serialized image (graph metadata + weights) —
  // the OTA manifest checksum. The rollout VersionRegistry records this at
  // version staging and re-verifies it at every promotion boundary, so a
  // poisoned staged image is caught before any replica is flashed from it.
  uint32_t image_crc() const;

  // Structural validation (indices in range, shapes consistent with op
  // kinds). check() reports the first problem; validate() throws it.
  std::optional<RtError> check() const;
  void validate() const;
};

// TFLM runtime overhead model, calibrated to the paper's reported numbers
// (§3.1: interpreter needs ~4 KB SRAM + 37 KB eFlash; persistent buffers —
// quantization params and tensor/op C structs — scale with the graph, e.g.
// ~34 KB for the Fig. 2 KWS model).
struct TflmOverheads {
  static constexpr int64_t kCodeFlashBytes = 37 * 1024;
  static constexpr int64_t kRuntimeSramBytes = 4 * 1024;
  static int64_t persistent_sram_bytes(const ModelDef& m);
};

}  // namespace mn::rt
