#include "runtime/profile.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace mn::rt {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

int64_t ProfileReport::total_wall_ns() const {
  int64_t n = 0;
  for (const OpProfile& op : ops) n += op.wall_ns;
  return n;
}

double ProfileReport::total_predicted_s() const {
  double s = 0.0;
  for (const OpProfile& op : ops) s += op.predicted_s;
  return s;
}

int64_t ProfileReport::predicted_cycles(size_t i) const {
  if (!has_predictions() || i >= ops.size()) return 0;
  return static_cast<int64_t>(std::llround(ops[i].predicted_s * clock_mhz * 1e6));
}

std::string ProfileReport::table() const {
  std::string out;
  out += fmt("profile '%s': %lld invoke(s)", model_name.c_str(),
             static_cast<long long>(invocations));
  if (has_predictions())
    out += fmt(", predictions for %s @ %.0f MHz", device_name.c_str(), clock_mhz);
  out += "\n";
  out += fmt("%-4s %-20s %-24s %-10s %12s %12s %12s %14s\n", "#", "op",
             "output", "backend", "MACs", "host us", "pred us", "pred cycles");
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpProfile& op = ops[i];
    std::string pred_us = "-", pred_cyc = "-";
    if (has_predictions()) {
      pred_us = fmt("%.1f", op.predicted_us());
      pred_cyc = fmt("%lld", static_cast<long long>(predicted_cycles(i)));
    }
    out += fmt("%-4d %-20s %-24s %-10s %12lld %12.1f %12s %14s\n", op.op_index,
               op_type_name(op.type), op.output_name.c_str(), op.backend,
               static_cast<long long>(op.macs), op.measured_us(),
               pred_us.c_str(), pred_cyc.c_str());
  }
  const double host_us = invocations > 0
                             ? static_cast<double>(total_wall_ns()) /
                                   (1e3 * static_cast<double>(invocations))
                             : 0.0;
  out += fmt("totals: host %.1f us/invoke", host_us);
  if (has_predictions())
    out += fmt(", predicted %.1f us/invoke", total_predicted_s() * 1e6);
  out += "\n";
  return out;
}

}  // namespace mn::rt
