#include "runtime/rt_error.hpp"

#include <array>
#include <stdexcept>

namespace mn::rt {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kTruncated: return "kTruncated";
    case ErrorCode::kBadMagic: return "kBadMagic";
    case ErrorCode::kUnsupportedVersion: return "kUnsupportedVersion";
    case ErrorCode::kCorruptString: return "kCorruptString";
    case ErrorCode::kBadRank: return "kBadRank";
    case ErrorCode::kAbsurdSize: return "kAbsurdSize";
    case ErrorCode::kTrailingBytes: return "kTrailingBytes";
    case ErrorCode::kCrcMismatch: return "kCrcMismatch";
    case ErrorCode::kBadTensorId: return "kBadTensorId";
    case ErrorCode::kBadOpType: return "kBadOpType";
    case ErrorCode::kBlobOutOfRange: return "kBlobOutOfRange";
    case ErrorCode::kGraphInvalid: return "kGraphInvalid";
    case ErrorCode::kInputMismatch: return "kInputMismatch";
    case ErrorCode::kNonFiniteInput: return "kNonFiniteInput";
    case ErrorCode::kNonFiniteOutput: return "kNonFiniteOutput";
    case ErrorCode::kArenaOverrun: return "kArenaOverrun";
    case ErrorCode::kUnsupportedOp: return "kUnsupportedOp";
    case ErrorCode::kIoError: return "kIoError";
    case ErrorCode::kOverloaded: return "kOverloaded";
    case ErrorCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case ErrorCode::kCircuitOpen: return "kCircuitOpen";
  }
  return "kUnknown";
}

std::string RtError::to_string() const {
  return std::string("[") + error_code_name(code) + "] " + message;
}

void throw_rt_error(const RtError& e) {
  // Input-shape mismatches historically threw std::invalid_argument; keep
  // that distinction for callers that filter on exception type.
  if (e.code == ErrorCode::kInputMismatch) throw std::invalid_argument(e.to_string());
  throw std::runtime_error(e.to_string());
}

namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mn::rt
