#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace mn::kernels {

namespace {

int8_t requantize(int32_t acc, const RequantParams& rq, int32_t oc) {
  int32_t v = quant::multiply_by_quantized_multiplier(acc, rq.channel_mult(oc)) + rq.output_zp;
  v = std::clamp(v, rq.act_min, rq.act_max);
  return static_cast<int8_t>(v);
}

}  // namespace

void conv2d_s8(std::span<const int8_t> input, std::span<const int8_t> weights,
               std::span<const int32_t> bias, std::span<int8_t> output,
               const ConvGeometry& g, const RequantParams& rq) {
  if (static_cast<int64_t>(input.size()) < g.input_elements() ||
      static_cast<int64_t>(output.size()) < g.output_elements())
    throw std::invalid_argument("conv2d_s8: buffer too small");
  const int64_t ksize = int64_t{g.kh} * g.kw * g.in_ch;
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/false));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   g.input_elements() + int64_t{g.out_ch} * ksize);
  obs::counter_add(obs::Counter::kKernelBytesWritten, g.output_elements());
  // Output rows are disjoint (and integer arithmetic is order-free), so the
  // row loop parallelizes with exact-match results at any thread count.
  parallel::parallel_for(0, g.out_h, [&](int64_t oy_lo, int64_t oy_hi) {
  for (int32_t oy = static_cast<int32_t>(oy_lo); oy < oy_hi; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      const int32_t iy0 = oy * g.stride - g.pad_h;
      const int32_t ix0 = ox * g.stride - g.pad_w;
      int8_t* out_px = output.data() + (int64_t{oy} * g.out_w + ox) * g.out_ch;
      for (int32_t oc = 0; oc < g.out_ch; ++oc) {
        const int8_t* wr = weights.data() + oc * ksize;
        int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(oc)];
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ix0 + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            const int8_t* xr = input.data() + (int64_t{iy} * g.in_w + ix) * g.in_ch;
            const int8_t* wk = wr + (int64_t{ky} * g.kw + kx) * g.in_ch;
            for (int32_t ic = 0; ic < g.in_ch; ++ic)
              acc += (static_cast<int32_t>(xr[ic]) - rq.input_zp) *
                     static_cast<int32_t>(wk[ic]);
          }
        }
        out_px[oc] = requantize(acc, rq, oc);
      }
    }
  }
  });
}

void depthwise_conv2d_s8(std::span<const int8_t> input,
                         std::span<const int8_t> weights,
                         std::span<const int32_t> bias, std::span<int8_t> output,
                         const ConvGeometry& g, const RequantParams& rq) {
  if (g.in_ch != g.out_ch)
    throw std::invalid_argument("depthwise_conv2d_s8: in_ch != out_ch");
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/true));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   g.input_elements() + int64_t{g.kh} * g.kw * g.in_ch);
  obs::counter_add(obs::Counter::kKernelBytesWritten, g.output_elements());
  parallel::parallel_for(0, g.out_h, [&](int64_t oy_lo, int64_t oy_hi) {
  for (int32_t oy = static_cast<int32_t>(oy_lo); oy < oy_hi; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      const int32_t iy0 = oy * g.stride - g.pad_h;
      const int32_t ix0 = ox * g.stride - g.pad_w;
      int8_t* out_px = output.data() + (int64_t{oy} * g.out_w + ox) * g.out_ch;
      for (int32_t c = 0; c < g.out_ch; ++c) {
        int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(c)];
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ix0 + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            const int8_t x = input[(int64_t{iy} * g.in_w + ix) * g.in_ch + c];
            const int8_t w = weights[(int64_t{ky} * g.kw + kx) * g.in_ch + c];
            acc += (static_cast<int32_t>(x) - rq.input_zp) * static_cast<int32_t>(w);
          }
        }
        out_px[c] = requantize(acc, rq, c);
      }
    }
  }
  });
}

void fully_connected_s8(std::span<const int8_t> input,
                        std::span<const int8_t> weights,
                        std::span<const int32_t> bias, std::span<int8_t> output,
                        int32_t in_features, int32_t out_features,
                        const RequantParams& rq) {
  obs::counter_add(obs::Counter::kKernelMacs,
                   int64_t{in_features} * out_features);
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   in_features + int64_t{in_features} * out_features);
  obs::counter_add(obs::Counter::kKernelBytesWritten, out_features);
  // Each output feature is an independent dot product; grain keeps tiny
  // classifier heads from paying dispatch overhead per feature.
  parallel::parallel_for(
      0, out_features,
      [&](int64_t o_lo, int64_t o_hi) {
        for (int32_t o = static_cast<int32_t>(o_lo); o < o_hi; ++o) {
          const int8_t* wr = weights.data() + int64_t{o} * in_features;
          int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(o)];
          for (int32_t i = 0; i < in_features; ++i)
            acc += (static_cast<int32_t>(input[static_cast<size_t>(i)]) -
                    rq.input_zp) *
                   static_cast<int32_t>(wr[i]);
          output[static_cast<size_t>(o)] = requantize(acc, rq, o);
        }
      },
      /*grain=*/16);
}

void avg_pool_s8(std::span<const int8_t> input, std::span<int8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max) {
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   int64_t{g.in_h} * g.in_w * g.ch);
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   int64_t{g.out_h} * g.out_w * g.ch);
  for (int32_t oy = 0; oy < g.out_h; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      int8_t* out_px = output.data() + (int64_t{oy} * g.out_w + ox) * g.ch;
      for (int32_t c = 0; c < g.ch; ++c) {
        int32_t acc = 0, count = 0;
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = oy * g.stride - g.pad_h + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ox * g.stride - g.pad_w + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            acc += input[(int64_t{iy} * g.in_w + ix) * g.ch + c];
            ++count;
          }
        }
        int32_t v = count > 0
                        ? (acc > 0 ? (acc + count / 2) / count : (acc - count / 2) / count)
                        : 0;
        v = std::clamp(v, act_min, act_max);
        out_px[c] = static_cast<int8_t>(v);
      }
    }
  }
}

void max_pool_s8(std::span<const int8_t> input, std::span<int8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max) {
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   int64_t{g.in_h} * g.in_w * g.ch);
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   int64_t{g.out_h} * g.out_w * g.ch);
  for (int32_t oy = 0; oy < g.out_h; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      int8_t* out_px = output.data() + (int64_t{oy} * g.out_w + ox) * g.ch;
      for (int32_t c = 0; c < g.ch; ++c) {
        int32_t best = -128;
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = oy * g.stride - g.pad_h + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ox * g.stride - g.pad_w + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            best = std::max<int32_t>(best, input[(int64_t{iy} * g.in_w + ix) * g.ch + c]);
          }
        }
        out_px[c] = static_cast<int8_t>(std::clamp(best, act_min, act_max));
      }
    }
  }
}

void add_s8(std::span<const int8_t> a, std::span<const int8_t> b,
            std::span<int8_t> output, const AddParams& p) {
  if (a.size() != b.size() || a.size() != output.size())
    throw std::invalid_argument("add_s8: size mismatch");
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   static_cast<int64_t>(a.size() + b.size()));
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   static_cast<int64_t>(output.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    const int32_t sa = (static_cast<int32_t>(a[i]) - p.a_zp) << p.left_shift;
    const int32_t sb = (static_cast<int32_t>(b[i]) - p.b_zp) << p.left_shift;
    const int32_t ra = quant::multiply_by_quantized_multiplier(sa, p.a_mult);
    const int32_t rb = quant::multiply_by_quantized_multiplier(sb, p.b_mult);
    int32_t v = quant::multiply_by_quantized_multiplier(ra + rb, p.out_mult) + p.out_zp;
    v = std::clamp(v, p.act_min, p.act_max);
    output[i] = static_cast<int8_t>(v);
  }
}

void softmax_s8(std::span<const int8_t> input, std::span<int8_t> output,
                int32_t rows, int32_t cols, float input_scale) {
  // Float-internal softmax quantized to the TFLite convention
  // (scale 1/256, zero point -128).
  obs::counter_add(obs::Counter::kKernelBytesRead, int64_t{rows} * cols);
  obs::counter_add(obs::Counter::kKernelBytesWritten, int64_t{rows} * cols);
  for (int32_t r = 0; r < rows; ++r) {
    const int8_t* in = input.data() + int64_t{r} * cols;
    int8_t* out = output.data() + int64_t{r} * cols;
    int8_t mx = in[0];
    for (int32_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int32_t c = 0; c < cols; ++c)
      sum += std::exp(static_cast<double>(input_scale) * (in[c] - mx));
    for (int32_t c = 0; c < cols; ++c) {
      const double pv = std::exp(static_cast<double>(input_scale) * (in[c] - mx)) / sum;
      const int32_t q = static_cast<int32_t>(std::lround(pv * 256.0)) - 128;
      out[c] = static_cast<int8_t>(std::clamp(q, -128, 127));
    }
  }
}

}  // namespace mn::kernels
