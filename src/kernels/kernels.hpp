// Integer inference kernels (CMSIS-NN analog): int8 and packed-int4 variants
// with fixed-point requantization. Kernels operate on single images (no batch
// dimension), NHWC layout, exactly like the TFLM/CMSIS-NN reference kernels.
//
// The int4 kernels emulate sub-byte support by unpacking nibbles into small
// stack buffers before the multiply-accumulate, mirroring the paper's custom
// CMSIS-NN extension (§5.1.3); the latency overhead of the pack/unpack is
// modeled (as negligible) in the MCU latency model, not here.
#pragma once

#include <cstdint>
#include <span>

#include "quant/quant.hpp"

namespace mn::kernels {

struct ConvGeometry {
  int32_t in_h = 0, in_w = 0, in_ch = 0;
  int32_t out_h = 0, out_w = 0, out_ch = 0;
  int32_t kh = 0, kw = 0;
  int32_t stride = 1;
  int32_t pad_h = 0, pad_w = 0;

  int64_t input_elements() const { return int64_t{in_h} * in_w * in_ch; }
  int64_t output_elements() const { return int64_t{out_h} * out_w * out_ch; }
  // Multiply-accumulates; 1 MAC = 2 ops per the paper's convention.
  int64_t macs(bool depthwise) const {
    const int64_t per_out = int64_t{kh} * kw * (depthwise ? 1 : in_ch);
    return output_elements() * per_out;
  }
};

struct RequantParams {
  int32_t input_zp = 0;   // input zero point (subtracted)
  int32_t output_zp = 0;  // output zero point (added)
  quant::FixedMultiplier mult;  // in_scale * w_scale / out_scale (per-tensor)
  // Per-output-channel multipliers (TFLite per-channel conv semantics);
  // when non-empty this overrides `mult`.
  std::vector<quant::FixedMultiplier> per_channel;
  int32_t act_min = -128;  // fused activation clamp, quantized domain
  int32_t act_max = 127;

  const quant::FixedMultiplier& channel_mult(int32_t oc) const {
    return per_channel.empty() ? mult : per_channel[static_cast<size_t>(oc)];
  }
};

// Standard conv2d: weights [out_ch, kh, kw, in_ch], bias int32 (or empty).
void conv2d_s8(std::span<const int8_t> input, std::span<const int8_t> weights,
               std::span<const int32_t> bias, std::span<int8_t> output,
               const ConvGeometry& g, const RequantParams& rq);

// Depthwise conv2d (multiplier 1): weights [kh, kw, ch].
void depthwise_conv2d_s8(std::span<const int8_t> input,
                         std::span<const int8_t> weights,
                         std::span<const int32_t> bias, std::span<int8_t> output,
                         const ConvGeometry& g, const RequantParams& rq);

// Fully connected: weights [out, in].
void fully_connected_s8(std::span<const int8_t> input,
                        std::span<const int8_t> weights,
                        std::span<const int32_t> bias, std::span<int8_t> output,
                        int32_t in_features, int32_t out_features,
                        const RequantParams& rq);

struct PoolGeometry {
  int32_t in_h = 0, in_w = 0, ch = 0;
  int32_t out_h = 0, out_w = 0;
  int32_t kh = 0, kw = 0;
  int32_t stride = 1;
  int32_t pad_h = 0, pad_w = 0;
};

// Pooling: input and output share scale/zero-point (TFLite semantics).
void avg_pool_s8(std::span<const int8_t> input, std::span<int8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max);
void max_pool_s8(std::span<const int8_t> input, std::span<int8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max);

// Elementwise add with per-input rescaling (TFLite ADD semantics).
struct AddParams {
  int32_t a_zp = 0, b_zp = 0, out_zp = 0;
  int32_t left_shift = 20;
  quant::FixedMultiplier a_mult, b_mult, out_mult;
  int32_t act_min = -128, act_max = 127;
};
void add_s8(std::span<const int8_t> a, std::span<const int8_t> b,
            std::span<int8_t> output, const AddParams& p);

// Softmax over the final dim; output fixed at scale 1/256, zero point -128.
void softmax_s8(std::span<const int8_t> input, std::span<int8_t> output,
                int32_t rows, int32_t cols, float input_scale);

// Optimized conv2d: IM2COL into `scratch` (>= conv2d_scratch_bytes(g)), then
// GEMM-style dense dot products — the CMSIS-NN strategy. Bit-identical to
// conv2d_s8.
void conv2d_s8_im2col(std::span<const int8_t> input,
                      std::span<const int8_t> weights,
                      std::span<const int32_t> bias, std::span<int8_t> output,
                      std::span<int8_t> scratch, const ConvGeometry& g,
                      const RequantParams& rq);
int64_t conv2d_scratch_bytes(const ConvGeometry& g);

// --- Packed int4 variants ---------------------------------------------------
// Activations and weights are packed two nibbles per byte (see
// quant::pack_int4). Geometry counts are in *elements*, not bytes.

void conv2d_s4(std::span<const uint8_t> input, std::span<const uint8_t> weights,
               std::span<const int32_t> bias, std::span<uint8_t> output,
               const ConvGeometry& g, const RequantParams& rq);

void depthwise_conv2d_s4(std::span<const uint8_t> input,
                         std::span<const uint8_t> weights,
                         std::span<const int32_t> bias, std::span<uint8_t> output,
                         const ConvGeometry& g, const RequantParams& rq);

void fully_connected_s4(std::span<const uint8_t> input,
                        std::span<const uint8_t> weights,
                        std::span<const int32_t> bias, std::span<uint8_t> output,
                        int32_t in_features, int32_t out_features,
                        const RequantParams& rq);

void avg_pool_s4(std::span<const uint8_t> input, std::span<uint8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max);

// Packed-element accessors shared with the interpreter.
int8_t load_s4(std::span<const uint8_t> packed, int64_t index);
void store_s4(std::span<uint8_t> packed, int64_t index, int8_t value);

// Bytes needed to store n int4 elements.
inline int64_t packed_size_s4(int64_t n) { return (n + 1) / 2; }

}  // namespace mn::kernels
