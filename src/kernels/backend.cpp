#include "kernels/backend.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mn::kernels {

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kReference: return "reference";
    case BackendKind::kFast: return "fast";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_name(std::string_view name) {
  if (name == "reference") return BackendKind::kReference;
  if (name == "fast") return BackendKind::kFast;
  return std::nullopt;
}

BackendKind backend_from_env() {
  const char* env = std::getenv("MN_BACKEND");
  if (env == nullptr || env[0] == '\0') return BackendKind::kReference;
  if (auto k = parse_backend_name(env)) return *k;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "MN_BACKEND=%s is not a kernel backend (expected "
                 "\"reference\" or \"fast\"); using reference\n",
                 env);
  }
  return BackendKind::kReference;
}

PackedOpWeights pack_rows_s8(std::span<const int8_t> weights, int64_t num_rows,
                             int64_t row_len) {
  PackedOpWeights p;
  p.row_len = row_len;
  p.row_stride = (row_len + kPackAlign - 1) / kPackAlign * kPackAlign;
  p.num_rows = static_cast<int32_t>(num_rows);
  p.rows.assign(static_cast<size_t>(num_rows * p.row_stride), 0);
  p.sum_w.assign(static_cast<size_t>(num_rows), 0);
  for (int64_t r = 0; r < num_rows; ++r) {
    const int8_t* src = weights.data() + r * row_len;
    std::memcpy(p.rows.data() + r * p.row_stride, src,
                static_cast<size_t>(row_len));
    int32_t s = 0;
    for (int64_t k = 0; k < row_len; ++k) s += src[k];
    p.sum_w[static_cast<size_t>(r)] = s;
  }
  return p;
}

}  // namespace mn::kernels
