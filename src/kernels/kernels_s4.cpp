// Packed-int4 kernels: emulate sub-byte compute by unpacking nibbles into
// registers before the multiply-accumulate, as in the paper's custom
// CMSIS-NN kernels (§5.1.3).
#include <algorithm>
#include <stdexcept>
#include <vector>

#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace mn::kernels {

int8_t load_s4(std::span<const uint8_t> packed, int64_t index) {
  const uint8_t byte = packed[static_cast<size_t>(index / 2)];
  const uint8_t nib = (index % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
  return static_cast<int8_t>(nib >= 8 ? static_cast<int>(nib) - 16
                                      : static_cast<int>(nib));
}

void store_s4(std::span<uint8_t> packed, int64_t index, int8_t value) {
  if (value < -8 || value > 7) throw std::invalid_argument("store_s4: range");
  uint8_t& byte = packed[static_cast<size_t>(index / 2)];
  const uint8_t nib = static_cast<uint8_t>(value & 0x0F);
  if (index % 2 == 0)
    byte = static_cast<uint8_t>((byte & 0xF0) | nib);
  else
    byte = static_cast<uint8_t>((byte & 0x0F) | (nib << 4));
}

namespace {

int8_t requantize4(int32_t acc, const RequantParams& rq, int32_t oc) {
  int32_t v = quant::multiply_by_quantized_multiplier(acc, rq.channel_mult(oc)) + rq.output_zp;
  v = std::clamp(v, std::max(rq.act_min, -8), std::min(rq.act_max, 7));
  return static_cast<int8_t>(v);
}

}  // namespace

void conv2d_s4(std::span<const uint8_t> input, std::span<const uint8_t> weights,
               std::span<const int32_t> bias, std::span<uint8_t> output,
               const ConvGeometry& g, const RequantParams& rq) {
  const int64_t ksize = int64_t{g.kh} * g.kw * g.in_ch;
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/false));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   packed_size_s4(g.input_elements()) +
                       packed_size_s4(int64_t{g.out_ch} * ksize));
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   packed_size_s4(g.output_elements()));
  // store_s4 read-modify-writes a shared byte holding two nibbles, so chunks
  // must never split a byte: parallelize over *pairs* of output rows. A pair
  // starts at element offset 2*p*out_w*out_ch — always even, so each chunk
  // owns whole bytes regardless of row-size parity.
  const int64_t row_pairs = (int64_t{g.out_h} + 1) / 2;
  parallel::parallel_for(0, row_pairs, [&](int64_t p_lo, int64_t p_hi) {
  // Unpack one input row of channels at a time into a small buffer —
  // this is the software emulation path the paper describes. Per-chunk so
  // concurrent chunks don't share scratch.
  std::vector<int8_t> xbuf(static_cast<size_t>(g.in_ch));
  std::vector<int8_t> wbuf(static_cast<size_t>(g.in_ch));
  const int32_t oy_lo = static_cast<int32_t>(2 * p_lo);
  const int32_t oy_hi = std::min(g.out_h, static_cast<int32_t>(2 * p_hi));
  for (int32_t oy = oy_lo; oy < oy_hi; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      const int32_t iy0 = oy * g.stride - g.pad_h;
      const int32_t ix0 = ox * g.stride - g.pad_w;
      for (int32_t oc = 0; oc < g.out_ch; ++oc) {
        int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(oc)];
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ix0 + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            const int64_t xoff = (int64_t{iy} * g.in_w + ix) * g.in_ch;
            const int64_t woff = int64_t{oc} * ksize + (int64_t{ky} * g.kw + kx) * g.in_ch;
            for (int32_t ic = 0; ic < g.in_ch; ++ic) {
              xbuf[static_cast<size_t>(ic)] = load_s4(input, xoff + ic);
              wbuf[static_cast<size_t>(ic)] = load_s4(weights, woff + ic);
            }
            for (int32_t ic = 0; ic < g.in_ch; ++ic)
              acc += (static_cast<int32_t>(xbuf[static_cast<size_t>(ic)]) - rq.input_zp) *
                     static_cast<int32_t>(wbuf[static_cast<size_t>(ic)]);
          }
        }
        const int64_t out_idx = (int64_t{oy} * g.out_w + ox) * g.out_ch + oc;
        store_s4(output, out_idx, requantize4(acc, rq, oc));
      }
    }
  }
  });
}

void depthwise_conv2d_s4(std::span<const uint8_t> input,
                         std::span<const uint8_t> weights,
                         std::span<const int32_t> bias, std::span<uint8_t> output,
                         const ConvGeometry& g, const RequantParams& rq) {
  if (g.in_ch != g.out_ch)
    throw std::invalid_argument("depthwise_conv2d_s4: in_ch != out_ch");
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/true));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   packed_size_s4(g.input_elements()) +
                       packed_size_s4(int64_t{g.kh} * g.kw * g.in_ch));
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   packed_size_s4(g.output_elements()));
  // Row pairs for packed-byte safety (see conv2d_s4).
  const int64_t row_pairs = (int64_t{g.out_h} + 1) / 2;
  parallel::parallel_for(0, row_pairs, [&](int64_t p_lo, int64_t p_hi) {
  const int32_t oy_lo = static_cast<int32_t>(2 * p_lo);
  const int32_t oy_hi = std::min(g.out_h, static_cast<int32_t>(2 * p_hi));
  for (int32_t oy = oy_lo; oy < oy_hi; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      const int32_t iy0 = oy * g.stride - g.pad_h;
      const int32_t ix0 = ox * g.stride - g.pad_w;
      for (int32_t c = 0; c < g.out_ch; ++c) {
        int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(c)];
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ix0 + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            const int8_t x = load_s4(input, (int64_t{iy} * g.in_w + ix) * g.in_ch + c);
            const int8_t w = load_s4(weights, (int64_t{ky} * g.kw + kx) * g.in_ch + c);
            acc += (static_cast<int32_t>(x) - rq.input_zp) * static_cast<int32_t>(w);
          }
        }
        const int64_t out_idx = (int64_t{oy} * g.out_w + ox) * g.out_ch + c;
        store_s4(output, out_idx, requantize4(acc, rq, c));
      }
    }
  }
  });
}

void fully_connected_s4(std::span<const uint8_t> input,
                        std::span<const uint8_t> weights,
                        std::span<const int32_t> bias, std::span<uint8_t> output,
                        int32_t in_features, int32_t out_features,
                        const RequantParams& rq) {
  obs::counter_add(obs::Counter::kKernelMacs,
                   int64_t{in_features} * out_features);
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   packed_size_s4(in_features) +
                       packed_size_s4(int64_t{in_features} * out_features));
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   packed_size_s4(out_features));
  // Output-feature *pairs* so no two chunks share a packed output byte.
  const int64_t out_pairs = (int64_t{out_features} + 1) / 2;
  parallel::parallel_for(
      0, out_pairs,
      [&](int64_t p_lo, int64_t p_hi) {
        const int32_t o_lo = static_cast<int32_t>(2 * p_lo);
        const int32_t o_hi =
            std::min(out_features, static_cast<int32_t>(2 * p_hi));
        for (int32_t o = o_lo; o < o_hi; ++o) {
          int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(o)];
          const int64_t woff = int64_t{o} * in_features;
          for (int32_t i = 0; i < in_features; ++i)
            acc += (static_cast<int32_t>(load_s4(input, i)) - rq.input_zp) *
                   static_cast<int32_t>(load_s4(weights, woff + i));
          store_s4(output, o, requantize4(acc, rq, o));
        }
      },
      /*grain=*/8);
}

void avg_pool_s4(std::span<const uint8_t> input, std::span<uint8_t> output,
                 const PoolGeometry& g, int32_t act_min, int32_t act_max) {
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   packed_size_s4(int64_t{g.in_h} * g.in_w * g.ch));
  obs::counter_add(obs::Counter::kKernelBytesWritten,
                   packed_size_s4(int64_t{g.out_h} * g.out_w * g.ch));
  for (int32_t oy = 0; oy < g.out_h; ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      for (int32_t c = 0; c < g.ch; ++c) {
        int32_t acc = 0, count = 0;
        for (int32_t ky = 0; ky < g.kh; ++ky) {
          const int32_t iy = oy * g.stride - g.pad_h + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int32_t kx = 0; kx < g.kw; ++kx) {
            const int32_t ix = ox * g.stride - g.pad_w + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            acc += load_s4(input, (int64_t{iy} * g.in_w + ix) * g.ch + c);
            ++count;
          }
        }
        int32_t v = count > 0
                        ? (acc > 0 ? (acc + count / 2) / count : (acc - count / 2) / count)
                        : 0;
        v = std::clamp(v, std::max(act_min, -8), std::min(act_max, 7));
        store_s4(output, (int64_t{oy} * g.out_w + ox) * g.ch + c,
                 static_cast<int8_t>(v));
      }
    }
  }
}

}  // namespace mn::kernels
