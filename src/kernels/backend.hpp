// Pluggable kernel backends (DESIGN.md §14).
//
// A Backend names one execution strategy for the integer kernels. Selection
// follows the TFLite-delegate claim-or-fall-back pattern: a requested backend
// *claims* the ops it can execute and everything else falls back to
// kReference per-op, so a model never fails to run because a backend lacks a
// kernel — it just runs that op on the reference path.
//
//   kReference — the single-strategy loops in kernels_s8/s4/opt.cpp. The
//     semantic ground truth: every other backend must match it byte-for-byte.
//   kFast — cache-blocked im2col-GEMM (kernels_fast.cpp): weight panels
//     packed once at model-load time (16-byte row stride, zero-point
//     correction sums), a block of output-pixel columns gathered per GEMM
//     call so each weight row is streamed once per block instead of once per
//     pixel, SSE2 pmaddwd inner dot products on x86-64 (exact integer
//     arithmetic — never a source of divergence) with a scalar fallback
//     elsewhere, and requant→activation-clamp fused into the store exactly
//     like the reference kernels. Claims int8 conv2d and fully-connected;
//     depthwise/pool/add/softmax and all int4 ops fall back.
//
// The contract that makes a second backend safe at all: for every geometry
// and every MN_THREADS, a claimed op's output is BYTE-IDENTICAL to the
// reference kernel's (tests/test_backends.cpp). Integer accumulation is
// order-free (no rounding), so tiling/SIMD reassociation cannot change
// results — which is why golden vectors, resume equivalence and serving
// fingerprints carry over unchanged whichever backend served the op.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "kernels/kernels.hpp"

namespace mn::kernels {

enum class BackendKind : uint8_t {
  kReference = 0,
  kFast,
};

// Stable lowercase names ("reference", "fast") used by MN_BACKEND, obs
// output and bench JSON.
const char* backend_name(BackendKind k);
std::optional<BackendKind> parse_backend_name(std::string_view name);

// Resolves the process-default backend from the MN_BACKEND environment
// variable: "reference" (also unset/empty) or "fast". An unknown value warns
// on stderr once and falls back to kReference — a typo must never silently
// change numerical strategy without a trace in the log.
BackendKind backend_from_env();

// Per-interpreter backend request. Defaulting the member (not the ctor call
// site) keeps env resolution at construction time, where it is observable
// and testable.
struct BackendConfig {
  BackendKind kind = backend_from_env();

  static BackendConfig reference() { return {BackendKind::kReference}; }
  static BackendConfig fast() { return {BackendKind::kFast}; }
};

// --- packed weight panels (fast backend, built once at model load) ----------

// Row stride granule: SSE2 register width. Rows padded to a multiple of this
// never need a scalar tail when the right-hand side is also padded.
inline constexpr int64_t kPackAlign = 16;

// One conv/FC weight matrix repacked for the fast GEMM: `num_rows` rows
// (output channels / features) of `row_len` int8 values, each stored at a
// 16-byte-aligned stride with a zero tail, plus the per-row weight sums that
// fold the input zero point out of the inner loop:
//   sum((x - zp) * w) == sum(x * w) - zp * sum(w)
// (exact in integer arithmetic, so bit-exactness is preserved).
struct PackedOpWeights {
  std::vector<int8_t> rows;    // [num_rows][row_stride], tails zeroed
  std::vector<int32_t> sum_w;  // per-row sum of weights
  int64_t row_len = 0;
  int64_t row_stride = 0;      // row_len rounded up to kPackAlign
  int32_t num_rows = 0;

  int64_t bytes() const {
    return static_cast<int64_t>(rows.size() + 4 * sum_w.size());
  }
};

// Packs `num_rows` x `row_len` row-major int8 weights (conv: rows = out_ch,
// row_len = kh*kw*in_ch; FC: rows = out_features, row_len = in_features).
PackedOpWeights pack_rows_s8(std::span<const int8_t> weights, int64_t num_rows,
                             int64_t row_len);

// --- fast-backend kernels ---------------------------------------------------

// Output-pixel columns gathered per GEMM call (the cache block): each packed
// weight row is read once per block instead of once per pixel.
inline constexpr int32_t kConvPixelBlock = 8;

// Scratch for the blocked conv: kConvPixelBlock padded im2col columns.
int64_t conv2d_fast_scratch_bytes(const ConvGeometry& g);

// Cache-blocked conv2d, bit-identical to conv2d_s8. `packed` must come from
// pack_rows_s8(weights, out_ch, kh*kw*in_ch); `scratch` must hold at least
// conv2d_fast_scratch_bytes(g) (the serial path; parallel chunks gather into
// their own blocks). Row-parallel with the same deterministic chunking as
// the reference kernels.
void conv2d_s8_fast(std::span<const int8_t> input, const PackedOpWeights& packed,
                    std::span<const int32_t> bias, std::span<int8_t> output,
                    std::span<int8_t> scratch, const ConvGeometry& g,
                    const RequantParams& rq);

// Fully connected on a packed panel, bit-identical to fully_connected_s8.
void fully_connected_s8_fast(std::span<const int8_t> input,
                             const PackedOpWeights& packed,
                             std::span<const int32_t> bias,
                             std::span<int8_t> output, int32_t in_features,
                             int32_t out_features, const RequantParams& rq);

}  // namespace mn::kernels
