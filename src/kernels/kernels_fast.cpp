// Fast-backend kernels: cache-blocked im2col-GEMM over weight panels packed
// at model-load time (see backend.hpp for the layout and the bit-exactness
// contract).
//
// Three ingredients, each exact in integer arithmetic:
//   1. Zero-point folding. The reference inner loop computes
//      sum((x - zp) * w); the packed panel carries sum(w) per row, so the
//      loop runs the plain dot sum(x * w) and the initializer absorbs
//      -zp * sum(w). Same int32 value, one subtraction fewer per MAC.
//   2. Pixel-block cache blocking. A block of kConvPixelBlock im2col columns
//      is gathered once, then every weight row is streamed once *per block*
//      instead of once per output pixel — an out_ch x block GEMM tile.
//   3. SSE2 pmaddwd dot products on x86-64 (sign-extend int8 lanes to
//      int16, multiply-accumulate pairs into int32). Integer SIMD wraps
//      exactly like scalar int32 arithmetic, so reassociating the
//      accumulation order cannot change the result. Non-x86 hosts take the
//      unrolled scalar path below — slower, still byte-identical.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "kernels/backend.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace mn::kernels {

namespace {

// Exact dot product of two int8 rows. `n` may exceed the logically valid
// prefix only when both tails are zero-padded (packed rows / padded columns).
inline int32_t dot_s8(const int8_t* x, const int8_t* w, int64_t n) {
#if defined(__SSE2__)
  __m128i acc = _mm_setzero_si128();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i xv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i wv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    // Sign-extend bytes to 16-bit lanes (unpack-with-self + arithmetic
    // shift: SSE2 has no pmovsxbw). Products fit int16 pairs in int32.
    const __m128i xlo = _mm_srai_epi16(_mm_unpacklo_epi8(xv, xv), 8);
    const __m128i xhi = _mm_srai_epi16(_mm_unpackhi_epi8(xv, xv), 8);
    const __m128i wlo = _mm_srai_epi16(_mm_unpacklo_epi8(wv, wv), 8);
    const __m128i whi = _mm_srai_epi16(_mm_unpackhi_epi8(wv, wv), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(xlo, wlo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(xhi, whi));
  }
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int32_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) s += static_cast<int32_t>(x[i]) * w[i];
  return s;
#else
  int32_t s = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s += static_cast<int32_t>(x[i]) * w[i];
    s += static_cast<int32_t>(x[i + 1]) * w[i + 1];
    s += static_cast<int32_t>(x[i + 2]) * w[i + 2];
    s += static_cast<int32_t>(x[i + 3]) * w[i + 3];
  }
  for (; i < n; ++i) s += static_cast<int32_t>(x[i]) * w[i];
  return s;
#endif
}

inline int8_t requant_store(int32_t acc, const RequantParams& rq, int32_t oc) {
  int32_t v =
      quant::multiply_by_quantized_multiplier(acc, rq.channel_mult(oc)) +
      rq.output_zp;
  v = std::clamp(v, rq.act_min, rq.act_max);
  return static_cast<int8_t>(v);
}

}  // namespace

int64_t conv2d_fast_scratch_bytes(const ConvGeometry& g) {
  const int64_t ksize = int64_t{g.kh} * g.kw * g.in_ch;
  const int64_t stride = (ksize + kPackAlign - 1) / kPackAlign * kPackAlign;
  return int64_t{kConvPixelBlock} * stride;
}

void conv2d_s8_fast(std::span<const int8_t> input, const PackedOpWeights& packed,
                    std::span<const int32_t> bias, std::span<int8_t> output,
                    std::span<int8_t> scratch, const ConvGeometry& g,
                    const RequantParams& rq) {
  const int64_t ksize = int64_t{g.kh} * g.kw * g.in_ch;
  if (packed.row_len != ksize || packed.num_rows != g.out_ch)
    throw std::invalid_argument("conv2d_s8_fast: packed panel/geometry mismatch");
  if (static_cast<int64_t>(input.size()) < g.input_elements() ||
      static_cast<int64_t>(output.size()) < g.output_elements())
    throw std::invalid_argument("conv2d_s8_fast: buffer too small");
  if (static_cast<int64_t>(scratch.size()) < conv2d_fast_scratch_bytes(g))
    throw std::invalid_argument("conv2d_s8_fast: scratch too small");
  const int64_t row_stride = packed.row_stride;
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/false));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   g.input_elements() + int64_t{g.out_ch} * ksize);
  obs::counter_add(obs::Counter::kKernelBytesWritten, g.output_elements());
  obs::counter_add(obs::Counter::kIm2colBytes,
                   int64_t{g.out_h} * g.out_w * ksize);
  // Padding slots hold the raw zero point (the loop dots x*w directly; the
  // -zp*sum_w initializer turns that contribution into exactly zero).
  const int8_t pad_value =
      static_cast<int8_t>(std::clamp<int32_t>(rq.input_zp, -128, 127));
  const int64_t chunks = parallel::num_chunks(g.out_h, /*grain=*/1);
  parallel::for_chunks(chunks, [&](int64_t chunk) {
    const parallel::Range rows = parallel::chunk_range(g.out_h, chunks, chunk);
    std::vector<int8_t> local;
    int8_t* block = scratch.data();
    if (chunks > 1) {
      local.resize(static_cast<size_t>(conv2d_fast_scratch_bytes(g)));
      block = local.data();
    }
    for (int32_t oy = static_cast<int32_t>(rows.begin);
         oy < static_cast<int32_t>(rows.end); ++oy) {
      const int32_t iy0 = oy * g.stride - g.pad_h;
      for (int32_t ox0 = 0; ox0 < g.out_w; ox0 += kConvPixelBlock) {
        const int32_t np = std::min<int32_t>(kConvPixelBlock, g.out_w - ox0);
        // Gather np im2col columns into the block; zero each column's pad
        // tail so the SIMD loop can run over the full padded stride (zero
        // weights times anything is zero, but a shared scratch may hold
        // another op's bytes there).
        for (int32_t p = 0; p < np; ++p) {
          int8_t* col = block + int64_t{p} * row_stride;
          const int32_t ix0 = (ox0 + p) * g.stride - g.pad_w;
          for (int32_t ky = 0; ky < g.kh; ++ky) {
            const int32_t iy = iy0 + ky;
            for (int32_t kx = 0; kx < g.kw; ++kx) {
              const int32_t ix = ix0 + kx;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
                std::memset(col, pad_value, static_cast<size_t>(g.in_ch));
              } else {
                std::memcpy(
                    col, input.data() + (int64_t{iy} * g.in_w + ix) * g.in_ch,
                    static_cast<size_t>(g.in_ch));
              }
              col += g.in_ch;
            }
          }
          std::memset(col, 0, static_cast<size_t>(row_stride - ksize));
        }
        // GEMM tile: stream each packed weight row once across the block.
        int8_t* out_base =
            output.data() + (int64_t{oy} * g.out_w + ox0) * g.out_ch;
        for (int32_t oc = 0; oc < g.out_ch; ++oc) {
          const int8_t* wr = packed.rows.data() + int64_t{oc} * row_stride;
          const int32_t init =
              (bias.empty() ? 0 : bias[static_cast<size_t>(oc)]) -
              rq.input_zp * packed.sum_w[static_cast<size_t>(oc)];
          for (int32_t p = 0; p < np; ++p) {
            const int32_t acc =
                init + dot_s8(block + int64_t{p} * row_stride, wr, row_stride);
            out_base[int64_t{p} * g.out_ch + oc] = requant_store(acc, rq, oc);
          }
        }
      }
    }
  });
}

void fully_connected_s8_fast(std::span<const int8_t> input,
                             const PackedOpWeights& packed,
                             std::span<const int32_t> bias,
                             std::span<int8_t> output, int32_t in_features,
                             int32_t out_features, const RequantParams& rq) {
  if (packed.row_len != in_features || packed.num_rows != out_features)
    throw std::invalid_argument(
        "fully_connected_s8_fast: packed panel/geometry mismatch");
  obs::counter_add(obs::Counter::kKernelMacs,
                   int64_t{in_features} * out_features);
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   in_features + int64_t{in_features} * out_features);
  obs::counter_add(obs::Counter::kKernelBytesWritten, out_features);
  // The input is the caller's span (no padded copy), so the dot runs over
  // in_features and takes the scalar tail; packed rows store the real
  // weights in their first row_len bytes.
  parallel::parallel_for(
      0, out_features,
      [&](int64_t o_lo, int64_t o_hi) {
        for (int32_t o = static_cast<int32_t>(o_lo); o < o_hi; ++o) {
          const int8_t* wr =
              packed.rows.data() + int64_t{o} * packed.row_stride;
          const int32_t init =
              (bias.empty() ? 0 : bias[static_cast<size_t>(o)]) -
              rq.input_zp * packed.sum_w[static_cast<size_t>(o)];
          const int32_t acc = init + dot_s8(input.data(), wr, in_features);
          output[static_cast<size_t>(o)] = requant_store(acc, rq, o);
        }
      },
      /*grain=*/16);
}

}  // namespace mn::kernels
