// Optimized int8 convolution via IM2COL + GEMM-style inner loops — the
// strategy CMSIS-NN's arm_convolve_* kernels use (gather the receptive field
// into a contiguous column buffer, then run dense dot products). On the host
// this removes the bounds checks and strided reads from the inner loop.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace mn::kernels {

int64_t conv2d_scratch_bytes(const ConvGeometry& g) {
  return int64_t{g.kh} * g.kw * g.in_ch;
}

void conv2d_s8_im2col(std::span<const int8_t> input,
                      std::span<const int8_t> weights,
                      std::span<const int32_t> bias, std::span<int8_t> output,
                      std::span<int8_t> scratch, const ConvGeometry& g,
                      const RequantParams& rq) {
  const int64_t ksize = conv2d_scratch_bytes(g);
  if (static_cast<int64_t>(scratch.size()) < ksize)
    throw std::invalid_argument("conv2d_s8_im2col: scratch too small");
  if (static_cast<int64_t>(input.size()) < g.input_elements() ||
      static_cast<int64_t>(weights.size()) < int64_t{g.out_ch} * ksize ||
      static_cast<int64_t>(output.size()) < g.output_elements())
    throw std::invalid_argument("conv2d_s8_im2col: buffer too small");
  obs::counter_add(obs::Counter::kKernelMacs, g.macs(/*depthwise=*/false));
  obs::counter_add(obs::Counter::kKernelBytesRead,
                   g.input_elements() + int64_t{g.out_ch} * ksize);
  obs::counter_add(obs::Counter::kKernelBytesWritten, g.output_elements());
  // One gathered column per output pixel: the buffer-churn the CMSIS-NN
  // scratch pays for its dense inner loop.
  obs::counter_add(obs::Counter::kIm2colBytes,
                   int64_t{g.out_h} * g.out_w * ksize);
  // The zero-point-adjusted zero patch value: kernels accumulate
  // (x - input_zp) * w, so padded positions must contribute 0, i.e. the
  // column buffer stores x and the loop subtracts input_zp — padding slots
  // are filled with input_zp itself.
  const int8_t pad_value = static_cast<int8_t>(
      std::clamp<int32_t>(rq.input_zp, -128, 127));
  // Row-parallel: the caller's scratch serves the single-chunk (serial)
  // case; concurrent chunks gather into their own column buffers.
  const int64_t chunks = parallel::num_chunks(g.out_h, /*grain=*/1);
  parallel::for_chunks(chunks, [&](int64_t chunk) {
    const parallel::Range rows = parallel::chunk_range(g.out_h, chunks, chunk);
    std::vector<int8_t> local;
    int8_t* colbuf = scratch.data();
    if (chunks > 1) {
      local.resize(static_cast<size_t>(ksize));
      colbuf = local.data();
    }
  for (int32_t oy = static_cast<int32_t>(rows.begin);
       oy < static_cast<int32_t>(rows.end); ++oy) {
    for (int32_t ox = 0; ox < g.out_w; ++ox) {
      // IM2COL: gather one receptive field contiguously.
      int8_t* col = colbuf;
      for (int32_t ky = 0; ky < g.kh; ++ky) {
        const int32_t iy = oy * g.stride - g.pad_h + ky;
        for (int32_t kx = 0; kx < g.kw; ++kx) {
          const int32_t ix = ox * g.stride - g.pad_w + kx;
          if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
            std::memset(col, pad_value, static_cast<size_t>(g.in_ch));
          } else {
            std::memcpy(col, input.data() + (int64_t{iy} * g.in_w + ix) * g.in_ch,
                        static_cast<size_t>(g.in_ch));
          }
          col += g.in_ch;
        }
      }
      // GEMM row: one dense dot product per output channel.
      int8_t* out_px = output.data() + (int64_t{oy} * g.out_w + ox) * g.out_ch;
      for (int32_t oc = 0; oc < g.out_ch; ++oc) {
        const int8_t* wr = weights.data() + int64_t{oc} * ksize;
        const int8_t* xr = colbuf;
        int32_t acc = bias.empty() ? 0 : bias[static_cast<size_t>(oc)];
        int64_t i = 0;
        // Unrolled by 4: the scalar stand-in for the SMLAD dual-MAC path.
        for (; i + 4 <= ksize; i += 4) {
          acc += (static_cast<int32_t>(xr[i]) - rq.input_zp) * wr[i];
          acc += (static_cast<int32_t>(xr[i + 1]) - rq.input_zp) * wr[i + 1];
          acc += (static_cast<int32_t>(xr[i + 2]) - rq.input_zp) * wr[i + 2];
          acc += (static_cast<int32_t>(xr[i + 3]) - rq.input_zp) * wr[i + 3];
        }
        for (; i < ksize; ++i)
          acc += (static_cast<int32_t>(xr[i]) - rq.input_zp) * wr[i];
        int32_t v =
            quant::multiply_by_quantized_multiplier(acc, rq.channel_mult(oc)) +
            rq.output_zp;
        v = std::clamp(v, rq.act_min, rq.act_max);
        out_px[oc] = static_cast<int8_t>(v);
      }
    }
  }
  });
}

}  // namespace mn::kernels
