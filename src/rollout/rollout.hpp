// rollout:: — staged model-version lifecycle over the serving fleet
// (DESIGN.md §13): OTA-style updates with shadow validation and automatic
// rollback.
//
// A candidate model image moves through a staged state machine:
//
//   kIdle ──begin()── provenance check ──▶ kShadow
//   kShadow   mirrored traffic + golden vectors vs the incumbent, bit-exact
//   kCanary   hash-bucketed fraction of tenants pinned to the candidate
//   kRamp     cohort widens through ramp_pcts, guards watched at each step
//   kComplete candidate becomes the registry's active version
//
// Any guard breach at any stage — shadow divergence, golden-vector
// mismatch, candidate-replica quarantine, cohort p99 or failure-rate
// regression, or a provenance failure at a promotion boundary — triggers
// automatic rollback: every tenant is re-pinned to the incumbent, every
// candidate replica is re-imaged from the incumbent's pristine image, and a
// typed AbortReport records what fired and when.
//
// Like the serving engine underneath it, the controller runs in virtual
// time: every promotion and abort decision depends only on integer ticks,
// deterministic engine counters, and seeded hashes — never wall-clock — so
// a rollout's stage trajectory and fingerprint are bit-identical at any
// MN_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve.hpp"
#include "tensor/tensor.hpp"

namespace mn::rollout {

using Tick = serve::Tick;

enum class Stage : uint8_t {
  kIdle = 0,   // no rollout in flight
  kShadow,     // candidate mirrors traffic, serves nothing
  kCanary,     // first real cohort pinned to the candidate
  kRamp,       // cohort widening through RolloutConfig::ramp_pcts
  kComplete,   // candidate promoted to active
  kAborted,    // rolled back; see AbortReport
};
const char* stage_name(Stage s);

enum class AbortReason : uint8_t {
  kNone = 0,
  kProvenance,           // staged image CRC != manifest CRC
  kShadowDivergence,     // mirrored output != incumbent output
  kShadowFault,          // mirror invoke returned a typed error
  kGoldenMismatch,       // golden vector disagreed between versions
  kCandidateQuarantine,  // a candidate replica was quarantined + rebuilt
  kLatencyGuard,         // cohort windowed p99 above the guard
  kFailureGuard,         // cohort failure rate above the guard
};
const char* abort_reason_name(AbortReason r);

// Health guards watched while the candidate carries traffic (and, for the
// shadow counters, while it mirrors). A guard value is the maximum the
// rollout tolerates; exceeding it aborts. <= 0 disables the p99/failure
// guards; the count guards treat 0 as "any occurrence aborts".
struct GuardConfig {
  int64_t max_shadow_divergences = 0;
  int64_t max_shadow_faults = 0;
  int64_t max_golden_mismatches = 0;
  int64_t max_candidate_quarantines = 0;
  Tick max_cohort_p99_ticks = -1;
  double max_failed_rate = -1.0;
  // Failure-rate guard only fires once the cohort completed at least this
  // many requests during the stage (avoids aborting on one unlucky request).
  int64_t min_failed_samples = 16;
};

struct RolloutConfig {
  uint64_t seed = 0x5EED0FF1CEULL;  // cohort hash-bucketing seed
  Tick shadow_ticks = 64;           // shadow-stage duration
  Tick golden_period_ticks = 8;     // golden-vector replay cadence (0 = off)
  int canary_pct = 10;              // first real-traffic cohort
  Tick canary_ticks = 64;           // canary hold before ramping
  std::vector<int> ramp_pcts = {50, 100};
  Tick ramp_step_ticks = 32;        // hold per ramp step
  Tick rollback_cooldown_ticks = 4; // re-imaged replicas sit out this long
  GuardConfig guards;
  // Golden vectors replayed through both versions during shadow and
  // compared bit-exactly (deterministic kernels make that sound).
  std::vector<TensorF> golden_inputs;
};

struct RolloutStats {
  int64_t golden_checks = 0;
  int64_t golden_mismatches = 0;
  int64_t shadow_divergences = 0;  // engine delta attributed to this rollout
  int64_t shadow_faults = 0;
  int64_t promotions = 0;          // stage transitions taken
  int64_t cohort_size = 0;         // tenants currently pinned to candidate
  int64_t rollbacks = 0;
};

// Filled on rollback; everything a postmortem needs without logs.
struct AbortReport {
  AbortReason reason = AbortReason::kNone;
  Stage stage = Stage::kIdle;  // stage the rollout was in when it fired
  Tick at_tick = 0;            // engine tick of the rollback
  int version = -1;            // registry id of the aborted candidate
  int64_t shadow_divergences = 0;
  int64_t shadow_faults = 0;
  int64_t golden_mismatches = 0;
  int64_t candidate_quarantines = 0;
  int64_t tenants_repinned = 0;
  int64_t replicas_reimaged = 0;
  std::string detail;
};

// Deterministic chaos: corrupt the candidate at a scheduled engine tick.
// Live-replica poisoning is caught by the per-invoke weights CRC (engine
// quarantine -> kCandidateQuarantine guard); staged-image poisoning is
// caught by the registry provenance re-check at the next promotion
// boundary (kProvenance).
struct PoisonPlan {
  Tick at_tick = -1;  // engine tick to fire at (< 0 disables)
  int64_t flip_bits = 8;
  uint64_t seed = 0xBADF1A5ULL;
  bool target_staged_image = false;  // else: live candidate replicas
};

}  // namespace mn::rollout
