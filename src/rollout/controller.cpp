#include "rollout/controller.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/eventlog.hpp"
#include "reliability/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace mn::rollout {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kIdle: return "idle";
    case Stage::kShadow: return "shadow";
    case Stage::kCanary: return "canary";
    case Stage::kRamp: return "ramp";
    case Stage::kComplete: return "complete";
    case Stage::kAborted: return "aborted";
  }
  return "unknown";
}

const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kProvenance: return "provenance";
    case AbortReason::kShadowDivergence: return "shadow_divergence";
    case AbortReason::kShadowFault: return "shadow_fault";
    case AbortReason::kGoldenMismatch: return "golden_mismatch";
    case AbortReason::kCandidateQuarantine: return "candidate_quarantine";
    case AbortReason::kLatencyGuard: return "latency_guard";
    case AbortReason::kFailureGuard: return "failure_guard";
  }
  return "unknown";
}

RolloutController::RolloutController(serve::ServingEngine& engine,
                                     VersionRegistry& registry,
                                     RolloutConfig cfg)
    : engine_(engine), registry_(registry), cfg_(std::move(cfg)) {}

int RolloutController::deploy_initial(int version) {
  const VersionRegistry::Version& v = registry_.version(version);
  serve::VariantSpec spec;
  spec.model = v.image;
  spec.service_ticks = v.service_ticks;
  spec.instances = v.instances;
  spec.compile = v.compile_cfg;
  const int variant = engine_.stage_variant(std::move(spec));
  registry_.set_variant(version, variant);
  registry_.set_active(version);
  return variant;
}

int RolloutController::active_variant() const {
  const int v = registry_.active();
  return v < 0 ? -1 : registry_.version(v).variant;
}

rt::Expected<int> RolloutController::begin(int version) {
  if (stage_ == Stage::kShadow || stage_ == Stage::kCanary ||
      stage_ == Stage::kRamp)
    throw std::logic_error("RolloutController: a rollout is already in flight");
  stats_ = RolloutStats{};
  report_ = AbortReport{};
  cohort_.clear();
  poison_fired_ = false;
  completion_tick_ = -1;
  ramp_idx_ = -1;

  incumbent_version_ = registry_.active();
  if (incumbent_version_ < 0 ||
      registry_.version(incumbent_version_).variant < 0)
    return rt::RtError{rt::ErrorCode::kGraphInvalid,
                       "RolloutController: no active incumbent deployed"};
  incumbent_variant_ = registry_.version(incumbent_version_).variant;
  candidate_version_ = version;

  // OTA manifest verification before any replica is flashed: a staged image
  // that drifted from its manifest CRC never enters the pool.
  if (auto err = registry_.verify(version)) {
    report_.reason = AbortReason::kProvenance;
    report_.stage = Stage::kIdle;
    report_.at_tick = engine_.now();
    report_.version = version;
    report_.detail = err->message;
    ++stats_.rollbacks;
    enter(Stage::kAborted);
    return *err;
  }

  const VersionRegistry::Version& v = registry_.version(version);
  serve::VariantSpec spec;
  spec.model = v.image;
  spec.service_ticks = v.service_ticks;
  spec.instances = v.instances;
  spec.compile = v.compile_cfg;
  candidate_variant_ = engine_.stage_variant(std::move(spec));
  registry_.set_variant(version, candidate_variant_);

  // The rollout's fleet: every tenant currently serving on the incumbent.
  participants_.clear();
  for (int t = 0; t < engine_.num_tenants(); ++t)
    if (engine_.primary_variant(t) == incumbent_variant_)
      participants_.push_back(t);

  base_shadow_div_ = engine_.stats().shadow_divergences;
  base_shadow_faults_ = engine_.stats().shadow_faults;
  for (int t : participants_) engine_.enable_shadow(t, candidate_variant_);
  if (!cfg_.golden_inputs.empty() && cfg_.golden_period_ticks > 0) {
    golden_incumbent_ = engine_.pool().make_replica(incumbent_variant_);
    golden_candidate_ = engine_.pool().make_replica(candidate_variant_);
  }
  enter(Stage::kShadow);
  return candidate_variant_;
}

void RolloutController::schedule_poison(PoisonPlan plan) { poison_ = plan; }

uint64_t RolloutController::fingerprint() const {
  return hash_combine(engine_.fingerprint(), trajectory_);
}

void RolloutController::tick() {
  if (stage_ != Stage::kShadow && stage_ != Stage::kCanary &&
      stage_ != Stage::kRamp)
    return;
  maybe_fire_poison();

  if (stage_ == Stage::kShadow && cfg_.golden_period_ticks > 0 &&
      golden_incumbent_ && golden_candidate_ &&
      engine_.now() % cfg_.golden_period_ticks == 0) {
    for (const TensorF& in : cfg_.golden_inputs) {
      ++stats_.golden_checks;
      rt::Expected<TensorF> a = golden_incumbent_->try_invoke(in);
      rt::Expected<TensorF> b = golden_candidate_->try_invoke(in);
      bool mismatch = !a.ok() || !b.ok();
      if (!mismatch) {
        const TensorF& x = a.value();
        const TensorF& y = b.value();
        mismatch = x.size() != y.size();
        if (!mismatch)
          for (int64_t i = 0; i < x.size(); ++i)
            if (x[i] != y[i]) { mismatch = true; break; }
      }
      if (mismatch) ++stats_.golden_mismatches;
    }
  }

  stats_.shadow_divergences =
      engine_.stats().shadow_divergences - base_shadow_div_;
  stats_.shadow_faults = engine_.stats().shadow_faults - base_shadow_faults_;

  const AbortReason breach = check_guards();
  if (breach != AbortReason::kNone) {
    rollback(breach, std::string("guard breached: ") +
                         abort_reason_name(breach));
    return;
  }
  if (engine_.now() - stage_entered_ >= stage_duration()) promote();
}

void RolloutController::maybe_fire_poison() {
  if (poison_.at_tick < 0 || poison_fired_ ||
      engine_.now() < poison_.at_tick)
    return;
  poison_fired_ = true;
  if (poison_.target_staged_image) {
    reliability::FaultInjector::flip_bits_once(
        poison_.seed,
        registry_.mutable_image(candidate_version_).weights_blob,
        poison_.flip_bits);
    return;
  }
  // Live-replica poisoning: corrupt every candidate replica's flash image.
  // tick() runs between engine steps, so no kernel threads are executing.
  serve::InterpreterPool& pool = engine_.pool();
  for (int i = 0; i < pool.num_instances(); ++i) {
    if (pool.instance(i).variant != candidate_variant_) continue;
    reliability::FaultInjector::flip_bits_once(
        hash_combine(poison_.seed, static_cast<uint64_t>(i)),
        pool.interp(i).mutable_weights(), poison_.flip_bits);
  }
}

AbortReason RolloutController::check_guards() {
  const GuardConfig& g = cfg_.guards;
  if (stats_.shadow_divergences > g.max_shadow_divergences)
    return AbortReason::kShadowDivergence;
  if (stats_.shadow_faults > g.max_shadow_faults)
    return AbortReason::kShadowFault;
  if (stats_.golden_mismatches > g.max_golden_mismatches)
    return AbortReason::kGoldenMismatch;
  if (candidate_rebuilds() > g.max_candidate_quarantines)
    return AbortReason::kCandidateQuarantine;
  if (stage_ == Stage::kCanary || stage_ == Stage::kRamp) {
    if (g.max_cohort_p99_ticks > 0)
      for (int t : cohort_)
        if (engine_.tenant_p99(t) > g.max_cohort_p99_ticks)
          return AbortReason::kLatencyGuard;
    if (g.max_failed_rate > 0.0) {
      int64_t failed = 0, completed = 0;
      for (size_t i = 0; i < participants_.size(); ++i) {
        const int t = participants_[i];
        if (std::find(cohort_.begin(), cohort_.end(), t) == cohort_.end())
          continue;
        const serve::ServeStats& s = engine_.tenant_stats(t);
        failed += s.failed - baselines_[i].failed;
        completed += s.completed() - baselines_[i].completed;
      }
      if (completed >= g.min_failed_samples &&
          static_cast<double>(failed) >
              g.max_failed_rate * static_cast<double>(completed))
        return AbortReason::kFailureGuard;
    }
  }
  return AbortReason::kNone;
}

void RolloutController::promote() {
  // Provenance gate at every promotion boundary: a staged image poisoned
  // after begin() is caught before the rollout widens.
  if (auto err = registry_.verify(candidate_version_)) {
    rollback(AbortReason::kProvenance, err->message);
    return;
  }
  ++stats_.promotions;
  switch (stage_) {
    case Stage::kShadow:
      for (int t : participants_) engine_.disable_shadow(t);
      golden_incumbent_.reset();
      golden_candidate_.reset();
      assign_cohort(cfg_.canary_pct);
      enter(Stage::kCanary);
      break;
    case Stage::kCanary:
      if (cfg_.ramp_pcts.empty()) {
        assign_cohort(100);
        registry_.set_active(candidate_version_);
        completion_tick_ = engine_.now();
        enter(Stage::kComplete);
      } else {
        ramp_idx_ = 0;
        assign_cohort(cfg_.ramp_pcts[0]);
        enter(Stage::kRamp);
      }
      break;
    case Stage::kRamp:
      if (ramp_idx_ + 1 < static_cast<int>(cfg_.ramp_pcts.size())) {
        ++ramp_idx_;
        assign_cohort(cfg_.ramp_pcts[static_cast<size_t>(ramp_idx_)]);
        enter(Stage::kRamp);
      } else {
        assign_cohort(100);
        registry_.set_active(candidate_version_);
        completion_tick_ = engine_.now();
        enter(Stage::kComplete);
      }
      break;
    case Stage::kIdle:
    case Stage::kComplete:
    case Stage::kAborted:
      break;
  }
}

void RolloutController::assign_cohort(int pct) {
  // Rank-based hash bucketing: participants ordered by a seeded hash of
  // (version, tenant), cohort = the first k. Widening the percentage only
  // *adds* tenants (the prefix property), so a tenant moved to the
  // candidate never flaps back while the rollout is healthy — and the
  // assignment depends only on (seed, version, tenant id), never on timing.
  std::vector<std::pair<uint64_t, int>> ranked;
  ranked.reserve(participants_.size());
  for (int t : participants_)
    ranked.emplace_back(
        hash_combine(cfg_.seed,
                     hash_combine(static_cast<uint64_t>(candidate_version_),
                                  static_cast<uint64_t>(t))),
        t);
  std::sort(ranked.begin(), ranked.end());
  const int n = static_cast<int>(ranked.size());
  int k = 0;
  if (pct >= 100) k = n;
  else if (pct > 0) k = std::max(1, n * pct / 100);
  cohort_.clear();
  for (int i = 0; i < n; ++i) {
    const int t = ranked[static_cast<size_t>(i)].second;
    const bool on_candidate = i < k;
    engine_.pin_primary(t, on_candidate ? candidate_variant_
                                        : incumbent_variant_);
    if (on_candidate) cohort_.push_back(t);
  }
  std::sort(cohort_.begin(), cohort_.end());
  stats_.cohort_size = k;
}

void RolloutController::rollback(AbortReason reason, std::string detail) {
  report_.reason = reason;
  report_.stage = stage_;
  report_.at_tick = engine_.now();
  report_.version = candidate_version_;
  report_.shadow_divergences = stats_.shadow_divergences;
  report_.shadow_faults = stats_.shadow_faults;
  report_.golden_mismatches = stats_.golden_mismatches;
  report_.candidate_quarantines = candidate_rebuilds();
  report_.detail = std::move(detail);

  for (int t : participants_) {
    engine_.disable_shadow(t);
    if (engine_.primary_variant(t) == candidate_variant_) {
      engine_.pin_primary(t, incumbent_variant_);
      ++report_.tenants_repinned;
    }
  }
  golden_incumbent_.reset();
  golden_candidate_.reset();

  // Flash rollback: every candidate replica is re-imaged from the
  // incumbent's pristine image, so the candidate variant ends with zero
  // instances — the pool can never again dispatch to it.
  serve::InterpreterPool& pool = engine_.pool();
  const Tick until = engine_.now() + cfg_.rollback_cooldown_ticks;
  for (int i = 0; i < pool.num_instances(); ++i) {
    if (pool.instance(i).variant != candidate_variant_) continue;
    pool.reimage(i, incumbent_variant_, until);
    ++report_.replicas_reimaged;
  }

  ++stats_.rollbacks;
  stats_.cohort_size = 0;
  cohort_.clear();
  completion_tick_ = engine_.now();
  obs::event_emit({obs::EventKind::kRolloutAbort, /*tenant=*/-1, /*seq=*/-1,
                   engine_.now(), static_cast<int64_t>(reason),
                   report_.tenants_repinned});
  enter(Stage::kAborted);
  // Captured after kAborted is entered so the dump's trailing events show
  // the complete incident: guard breach, repins, reimages, stage change.
  obs::event_postmortem("rollout_abort", engine_.now());
}

void RolloutController::enter(Stage s) {
  stage_ = s;
  stage_entered_ = engine_.now();
  obs::event_emit({obs::EventKind::kRolloutStage, /*tenant=*/-1, /*seq=*/-1,
                   engine_.now(), static_cast<int64_t>(s),
                   static_cast<int64_t>(stats_.cohort_size)});
  trajectory_ = hash_combine(
      trajectory_, hash_combine(static_cast<uint64_t>(s) << 8,
                                static_cast<uint64_t>(engine_.now())));
  snapshot_baselines();
}

void RolloutController::snapshot_baselines() {
  baselines_.clear();
  baselines_.reserve(participants_.size());
  for (int t : participants_) {
    const serve::ServeStats& s = engine_.tenant_stats(t);
    baselines_.push_back(TenantBaseline{s.failed, s.completed()});
  }
}

int64_t RolloutController::candidate_rebuilds() const {
  if (candidate_variant_ < 0) return 0;
  const serve::InterpreterPool& pool = engine_.pool();
  int64_t n = 0;
  for (int i = 0; i < pool.num_instances(); ++i)
    if (pool.instance(i).variant == candidate_variant_)
      n += pool.instance(i).rebuilds;
  return n;
}

Tick RolloutController::stage_duration() const {
  switch (stage_) {
    case Stage::kShadow: return cfg_.shadow_ticks;
    case Stage::kCanary: return cfg_.canary_ticks;
    case Stage::kRamp: return cfg_.ramp_step_ticks;
    default: return std::numeric_limits<Tick>::max();
  }
}

}  // namespace mn::rollout
