// VersionRegistry: CRC-verified store of deployable model versions — the
// device-fleet analog of an OTA artifact registry. Each version keeps the
// full pristine image plus the manifest CRC recorded (or supplied) when it
// was added; verify() recomputes the image CRC so any later corruption of
// the staged bytes is caught before the image is flashed to more replicas.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compile/compile.hpp"
#include "rollout/rollout.hpp"
#include "runtime/model.hpp"
#include "runtime/rt_error.hpp"

namespace mn::rollout {

class VersionRegistry {
 public:
  struct Version {
    std::string tag;
    rt::ModelDef image;
    uint32_t manifest_crc = 0;  // expected image_crc(), from the manifest
    Tick service_ticks = 1;     // virtual cost per invoke on this version
    int instances = 1;          // replicas to build when staged
    int variant = -1;           // pool variant id once staged (-1 = not yet)
    // Graph-compiler config the fleet will stage this version with, and the
    // image_crc of the *compiled* image recorded at add_version. verify()
    // recompiles and re-checks it, so both a corrupted staged image and a
    // non-deterministic compiler are caught before any replica is flashed.
    compile::CompileConfig compile_cfg = compile::CompileConfig::none();
    uint32_t compiled_crc = 0;
  };

  // Adds a version. When `manifest_crc` is supplied it is checked against
  // the image immediately (a download that arrived corrupted is rejected
  // before it can ever be staged); otherwise the CRC is recorded from the
  // image as-is. Returns the version id.
  rt::Expected<int> add_version(std::string tag, rt::ModelDef image,
                                Tick service_ticks, int instances,
                                std::optional<uint32_t> manifest_crc =
                                    std::nullopt,
                                compile::CompileConfig compile_cfg =
                                    compile::CompileConfig::from_env());

  int num_versions() const { return static_cast<int>(versions_.size()); }
  const Version& version(int id) const {
    return versions_.at(static_cast<size_t>(id));
  }

  // Provenance re-check: recompute the stored image's CRC and compare to
  // the manifest. The rollout controller calls this at begin() and at every
  // promotion boundary.
  std::optional<rt::RtError> verify(int id) const;

  // Mutable access for the chaos harness (PoisonPlan::target_staged_image
  // flips bits here) and for the controller to record the staged variant.
  rt::ModelDef& mutable_image(int id) {
    return versions_.at(static_cast<size_t>(id)).image;
  }
  void set_variant(int id, int variant) {
    versions_.at(static_cast<size_t>(id)).variant = variant;
  }

  // The version the fleet currently serves on (-1 until first set_active).
  void set_active(int id);
  int active() const { return active_; }

 private:
  std::vector<Version> versions_;
  int active_ = -1;
};

}  // namespace mn::rollout
