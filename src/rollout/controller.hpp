// RolloutController: drives one candidate version through the staged state
// machine described in rollout.hpp, on top of a live ServingEngine.
//
// Usage:
//   VersionRegistry reg;
//   int v0 = reg.add_version("v0", incumbent, ...).value();
//   RolloutController ctl(engine, reg, cfg);
//   ctl.deploy_initial(v0);                 // stage + activate the incumbent
//   ... register tenants on ctl.active_variant(), run traffic ...
//   int v1 = reg.add_version("v1", candidate, ...).value();
//   ctl.begin(v1);                          // provenance check -> kShadow
//   while (...) { engine.step(); ctl.tick(); }   // tick after every step
//
// tick() must be called exactly once after each engine.step(); all state
// the controller reads (stats deltas, pool rebuild counts, windowed p99) is
// settled at that point, and nothing is executing, so poking replica memory
// (PoisonPlan) cannot race with kernel threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rollout/registry.hpp"
#include "rollout/rollout.hpp"
#include "runtime/rt_error.hpp"
#include "serve/engine.hpp"

namespace mn::rollout {

class RolloutController {
 public:
  RolloutController(serve::ServingEngine& engine, VersionRegistry& registry,
                    RolloutConfig cfg);

  // Stages `version` into the pool and marks it active — the fleet's first
  // deployment, before any staged rollout. Returns the pool variant id.
  int deploy_initial(int version);

  // Starts a staged rollout of `version` against the current active
  // (incumbent) version. Verifies staged-image provenance first: a poisoned
  // image never reaches the pool, the rollout lands in kAborted with a
  // kProvenance report, and the error is returned. On success the rollout
  // enters kShadow and the candidate's pool variant id is returned.
  rt::Expected<int> begin(int version);

  // Arms the chaos plan (fires inside a later tick()); replaces any
  // previously armed plan.
  void schedule_poison(PoisonPlan plan);

  // Advances the rollout one engine tick (call after engine.step()).
  void tick();

  Stage stage() const { return stage_; }
  // Registry id / pool variant the fleet is serving on.
  int active_version() const { return registry_.active(); }
  int active_variant() const;
  int candidate_variant() const { return candidate_variant_; }
  Tick stage_entered_tick() const { return stage_entered_; }
  // Tick at which the rollout completed / aborted (-1 while in flight).
  Tick completion_tick() const { return completion_tick_; }
  Tick abort_tick() const { return report_.at_tick; }

  const RolloutStats& stats() const { return stats_; }
  const AbortReport& abort_report() const { return report_; }

  // Rollout-trajectory fingerprint: the engine's completion-order hash
  // folded with every stage transition (stage, tick) — the determinism
  // witness for the whole staged lifecycle.
  uint64_t fingerprint() const;

 private:
  struct TenantBaseline {
    int64_t failed = 0;
    int64_t completed = 0;
  };

  void maybe_fire_poison();
  // Returns the first breached guard (kNone when healthy).
  AbortReason check_guards();
  void promote();
  void assign_cohort(int pct);
  void rollback(AbortReason reason, std::string detail);
  void enter(Stage s);
  void snapshot_baselines();
  int64_t candidate_rebuilds() const;
  Tick stage_duration() const;

  serve::ServingEngine& engine_;
  VersionRegistry& registry_;
  RolloutConfig cfg_;

  Stage stage_ = Stage::kIdle;
  Tick stage_entered_ = 0;
  Tick completion_tick_ = -1;
  int candidate_version_ = -1;
  int candidate_variant_ = -1;
  int incumbent_version_ = -1;
  int incumbent_variant_ = -1;
  int ramp_idx_ = -1;
  std::vector<int> participants_;  // tenant ids in this rollout's fleet
  std::vector<int> cohort_;        // tenants currently on the candidate

  // Stage-entry snapshots for guard deltas.
  int64_t base_shadow_div_ = 0;
  int64_t base_shadow_faults_ = 0;
  std::vector<TenantBaseline> baselines_;  // indexed like participants_

  // Golden-vector mirrors (standalone replicas; never in rotation).
  std::unique_ptr<rt::Interpreter> golden_incumbent_;
  std::unique_ptr<rt::Interpreter> golden_candidate_;

  PoisonPlan poison_;
  bool poison_fired_ = false;

  RolloutStats stats_;
  AbortReport report_;
  uint64_t trajectory_ = 0x0A117ULL;  // folded stage transitions
};

}  // namespace mn::rollout
