#include "rollout/registry.hpp"

#include <stdexcept>

namespace mn::rollout {

rt::Expected<int> VersionRegistry::add_version(
    std::string tag, rt::ModelDef image, Tick service_ticks, int instances,
    std::optional<uint32_t> manifest_crc, compile::CompileConfig compile_cfg) {
  if (service_ticks < 1)
    throw std::invalid_argument("VersionRegistry: service_ticks must be >= 1");
  if (instances < 1)
    throw std::invalid_argument("VersionRegistry: instances must be >= 1");
  if (auto err = image.check()) return *err;
  const uint32_t crc = image.image_crc();
  if (manifest_crc && *manifest_crc != crc)
    return rt::RtError{rt::ErrorCode::kCrcMismatch,
                       "VersionRegistry: image '" + tag +
                           "' does not match its manifest CRC"};
  Version v;
  v.tag = std::move(tag);
  v.image = std::move(image);
  v.manifest_crc = crc;
  v.service_ticks = service_ticks;
  v.instances = instances;
  v.compile_cfg = compile_cfg;
  if (compile_cfg.enabled) {
    // Record the provenance of what the fleet will actually serve: compile a
    // copy now and pin the compiled image's CRC. verify() re-derives it.
    rt::ModelDef compiled = v.image;
    compile::Pipeline(compile_cfg).run(compiled);
    v.compiled_crc = compiled.image_crc();
  }
  const int id = static_cast<int>(versions_.size());
  versions_.push_back(std::move(v));
  return id;
}

std::optional<rt::RtError> VersionRegistry::verify(int id) const {
  const Version& v = versions_.at(static_cast<size_t>(id));
  if (v.image.image_crc() != v.manifest_crc)
    return rt::RtError{rt::ErrorCode::kCrcMismatch,
                       "VersionRegistry: staged image '" + v.tag +
                           "' drifted from its manifest CRC"};
  if (v.compile_cfg.enabled) {
    // Compiled-image provenance: re-derive the compiled image from the
    // (just-verified) staged bytes and compare to the CRC pinned at
    // add_version. Catches a compiler whose output drifted between staging
    // and flashing — the compile pipeline is deterministic by contract.
    rt::ModelDef compiled = v.image;
    compile::Pipeline(v.compile_cfg).run(compiled);
    if (compiled.image_crc() != v.compiled_crc)
      return rt::RtError{rt::ErrorCode::kCrcMismatch,
                         "VersionRegistry: compiled image of '" + v.tag +
                             "' does not match its recorded provenance CRC"};
  }
  return std::nullopt;
}

void VersionRegistry::set_active(int id) {
  if (id < 0 || id >= num_versions())
    throw std::out_of_range("VersionRegistry: unknown version id");
  active_ = id;
}

}  // namespace mn::rollout
