// Hardware characterization harness reproducing §3 of the paper:
// random layer sweeps (Fig. 3), random whole-model sweeps from two supernet
// backbones (Fig. 4), and power/energy sweeps (Fig. 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcu/perf_model.hpp"
#include "tensor/rng.hpp"
#include "tensor/stats.hpp"

namespace mn::charac {

// --- Random layers (Fig. 3) -------------------------------------------------

struct LayerSample {
  mcu::LayerDesc layer;
  double latency_s = 0.0;
  double mops_per_s = 0.0;
};

// Random conv2d / depthwise / fully-connected layers with realistic TinyML
// dimensions, measured on the device model.
std::vector<LayerSample> characterize_layers(const mcu::Device& dev, int count,
                                             uint64_t seed);

// The paper's §3.2 anomaly: latency of a 3x3 conv at 138/138 vs 140/140
// input/output channels (the div-by-4 fast path).
struct ChannelAnomalyResult {
  double latency_138_s = 0.0;
  double latency_140_s = 0.0;
  double speedup = 0.0;  // latency_138 / latency_140
};
ChannelAnomalyResult channel_divisibility_anomaly(const mcu::Device& dev);

// --- Random models from backbones (Figs. 4, 5) ------------------------------

enum class Backbone { kCifar10Cnn, kKwsDsCnn };

struct RandomModel {
  std::vector<mcu::LayerDesc> layers;
  int64_t total_ops = 0;
  uint64_t structure_hash = 0;
};

// Samples a model from the given supernet backbone with random widths and
// depth (uniform prior over the search space, as in §3.3).
RandomModel sample_backbone(Backbone b, Rng& rng);

struct ModelLatencyPoint {
  int64_t ops = 0;
  double latency_s = 0.0;
};

struct LatencySweep {
  std::vector<ModelLatencyPoint> points;
  LineFit fit;               // latency vs ops (expect r^2 > 0.95)
  double mops_per_s = 0.0;   // 1/slope
};
LatencySweep characterize_model_latency(const mcu::Device& dev, Backbone b,
                                        int count, uint64_t seed);

struct EnergyPoint {
  int64_t ops = 0;
  double power_w = 0.0;
  double energy_j = 0.0;
};

struct EnergySweep {
  std::vector<EnergyPoint> points;
  Moments power;   // expect cv ~ 0.0073 (power independent of model)
  LineFit energy_fit;  // energy vs ops
};
EnergySweep characterize_energy(const mcu::Device& dev, Backbone b, int count,
                                uint64_t seed);

const char* backbone_name(Backbone b);

}  // namespace mn::charac
