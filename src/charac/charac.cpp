#include "charac/charac.hpp"

#include <algorithm>
#include <cmath>

namespace mn::charac {

namespace {

// Random channel count, biased toward multiples of 4 (as real model zoos are)
// but including odd sizes to produce the Fig. 3 spread.
int64_t random_channels(Rng& rng, int64_t lo, int64_t hi) {
  const int64_t c = rng.uniform_int(lo, hi);
  if (rng.bernoulli(0.7)) return (c + 3) / 4 * 4;
  return c;
}

// Backbone search spaces are restricted to SIMD-friendly widths (the paper
// constrains searched channels to multiples of 4), so the whole-model
// sampler always hits the fast conv path, unlike the free-form layer sweep.
int64_t backbone_channels(Rng& rng, int64_t lo, int64_t hi) {
  return (rng.uniform_int(lo, hi) + 3) / 4 * 4;
}

mcu::LayerDesc random_conv(Rng& rng) {
  mcu::LayerDesc l;
  l.kind = mcu::LayerKind::kConv2D;
  l.in_ch = random_channels(rng, 4, 160);
  l.out_ch = random_channels(rng, 4, 160);
  l.kh = l.kw = rng.bernoulli(0.7) ? 3 : 1;
  const int64_t hw = rng.uniform_int(4, 48);
  l.out_h = l.out_w = hw;
  l.ops = 2 * l.out_h * l.out_w * l.out_ch * l.kh * l.kw * l.in_ch;
  return l;
}

mcu::LayerDesc random_dwconv(Rng& rng) {
  mcu::LayerDesc l;
  l.kind = mcu::LayerKind::kDepthwiseConv2D;
  l.in_ch = l.out_ch = random_channels(rng, 8, 256);
  l.kh = l.kw = 3;
  const int64_t hw = rng.uniform_int(4, 48);
  l.out_h = l.out_w = hw;
  l.ops = 2 * l.out_h * l.out_w * l.out_ch * l.kh * l.kw;
  return l;
}

mcu::LayerDesc random_fc(Rng& rng) {
  mcu::LayerDesc l;
  l.kind = mcu::LayerKind::kFullyConnected;
  l.in_ch = rng.uniform_int(16, 2048);
  l.out_ch = rng.uniform_int(8, 512);
  l.ops = 2 * l.in_ch * l.out_ch;
  return l;
}

}  // namespace

std::vector<LayerSample> characterize_layers(const mcu::Device& dev, int count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<LayerSample> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    mcu::LayerDesc l;
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    if (kind == 0) l = random_conv(rng);
    else if (kind == 1) l = random_dwconv(rng);
    else l = random_fc(rng);
    LayerSample s;
    s.layer = l;
    s.latency_s = mcu::layer_latency_s(dev, l);
    s.mops_per_s = static_cast<double>(l.ops) / s.latency_s / 1e6;
    out.push_back(s);
  }
  return out;
}

ChannelAnomalyResult channel_divisibility_anomaly(const mcu::Device& dev) {
  auto make = [](int64_t ch) {
    mcu::LayerDesc l;
    l.kind = mcu::LayerKind::kConv2D;
    l.in_ch = l.out_ch = ch;
    l.kh = l.kw = 3;
    l.out_h = l.out_w = 10;
    l.ops = 2 * l.out_h * l.out_w * l.out_ch * l.kh * l.kw * l.in_ch;
    return l;
  };
  ChannelAnomalyResult r;
  r.latency_138_s = mcu::layer_latency_s(dev, make(138));
  r.latency_140_s = mcu::layer_latency_s(dev, make(140));
  r.speedup = r.latency_138_s / r.latency_140_s;
  return r;
}

const char* backbone_name(Backbone b) {
  return b == Backbone::kCifar10Cnn ? "CIFAR10-CNN" : "KWS-DSCNN";
}

RandomModel sample_backbone(Backbone b, Rng& rng) {
  RandomModel m;
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto push = [&](mcu::LayerDesc l) {
    m.layers.push_back(l);
    m.total_ops += l.ops;
    h = hash_combine(h, static_cast<uint64_t>(l.ops));
  };

  if (b == Backbone::kCifar10Cnn) {
    // Plain CNN on 32x32 RGB: stem + 3 stages of convs with widths sampled
    // from the supernet's (SIMD-friendly) option menu, stride-2 between
    // stages, GAP + FC(10).
    int64_t hres = 32;
    int64_t in_ch = 3;
    for (int s = 0; s < 3; ++s) {
      const int convs = static_cast<int>(rng.uniform_int(1, 3));
      const int64_t base = 16 << s;  // 16 / 32 / 64
      for (int c = 0; c < convs; ++c) {
        mcu::LayerDesc l;
        l.kind = mcu::LayerKind::kConv2D;
        l.in_ch = in_ch;
        l.out_ch = backbone_channels(rng, base, base * 3);
        l.kh = l.kw = 3;
        l.out_h = l.out_w = hres;
        l.ops = 2 * l.out_h * l.out_w * l.out_ch * l.kh * l.kw * l.in_ch;
        push(l);
        in_ch = l.out_ch;
      }
      hres = std::max<int64_t>(1, hres / 2);  // stride-2 transition
    }
    mcu::LayerDesc fc;
    fc.kind = mcu::LayerKind::kFullyConnected;
    fc.in_ch = in_ch;
    fc.out_ch = 10;
    fc.ops = 2 * fc.in_ch * fc.out_ch;
    push(fc);
  } else {
    // DS-CNN-style KWS net on 49x10x1: conv stem + K depthwise-separable
    // blocks of random width, GAP + FC(12).
    int64_t th = 25, tw = 5;  // after the stride-2 stem
    mcu::LayerDesc stem;
    stem.kind = mcu::LayerKind::kConv2D;
    stem.in_ch = 1;
    stem.out_ch = backbone_channels(rng, 32, 128);
    stem.kh = 10;
    stem.kw = 4;
    stem.out_h = th;
    stem.out_w = tw;
    stem.ops = 2 * th * tw * stem.out_ch * stem.kh * stem.kw * 1;
    push(stem);
    int64_t ch = stem.out_ch;
    const int blocks = static_cast<int>(rng.uniform_int(3, 8));
    for (int bidx = 0; bidx < blocks; ++bidx) {
      const int64_t out_ch = backbone_channels(rng, 32, 276);
      mcu::LayerDesc dw;
      dw.kind = mcu::LayerKind::kDepthwiseConv2D;
      dw.in_ch = dw.out_ch = ch;
      dw.kh = dw.kw = 3;
      dw.out_h = th;
      dw.out_w = tw;
      dw.ops = 2 * th * tw * ch * 9;
      push(dw);
      mcu::LayerDesc pw;
      pw.kind = mcu::LayerKind::kConv2D;
      pw.in_ch = ch;
      pw.out_ch = out_ch;
      pw.kh = pw.kw = 1;
      pw.out_h = th;
      pw.out_w = tw;
      pw.ops = 2 * th * tw * out_ch * ch;
      push(pw);
      ch = out_ch;
    }
    mcu::LayerDesc fc;
    fc.kind = mcu::LayerKind::kFullyConnected;
    fc.in_ch = ch;
    fc.out_ch = 12;
    fc.ops = 2 * fc.in_ch * fc.out_ch;
    push(fc);
  }
  m.structure_hash = h;
  return m;
}

LatencySweep characterize_model_latency(const mcu::Device& dev, Backbone b,
                                        int count, uint64_t seed) {
  Rng rng(seed);
  LatencySweep sweep;
  std::vector<double> xs, ys;
  for (int i = 0; i < count; ++i) {
    const RandomModel m = sample_backbone(b, rng);
    const double lat = mcu::model_latency_s(dev, m.layers);
    sweep.points.push_back({m.total_ops, lat});
    xs.push_back(static_cast<double>(m.total_ops));
    ys.push_back(lat);
  }
  sweep.fit = fit_line(xs, ys);
  sweep.mops_per_s = sweep.fit.slope > 0 ? 1.0 / sweep.fit.slope / 1e6 : 0.0;
  return sweep;
}

EnergySweep characterize_energy(const mcu::Device& dev, Backbone b, int count,
                                uint64_t seed) {
  Rng rng(seed);
  EnergySweep sweep;
  std::vector<double> powers, xs, es;
  for (int i = 0; i < count; ++i) {
    const RandomModel m = sample_backbone(b, rng);
    const double p = mcu::model_power_w(dev, m.structure_hash);
    const double e = p * mcu::model_latency_s(dev, m.layers);
    sweep.points.push_back({m.total_ops, p, e});
    powers.push_back(p);
    xs.push_back(static_cast<double>(m.total_ops));
    es.push_back(e);
  }
  sweep.power = compute_moments(powers);
  sweep.energy_fit = fit_line(xs, es);
  return sweep;
}

}  // namespace mn::charac
