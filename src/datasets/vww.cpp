#include "datasets/vww.hpp"

#include <algorithm>
#include <cmath>

namespace mn::data {

namespace {

void fill_rect(TensorF& img, int y0, int x0, int h, int w, float v) {
  const int H = static_cast<int>(img.shape().dim(0));
  const int W = static_cast<int>(img.shape().dim(1));
  for (int y = std::max(0, y0); y < std::min(H, y0 + h); ++y)
    for (int x = std::max(0, x0); x < std::min(W, x0 + w); ++x)
      img.at2(y, x) = v;
}

void fill_circle(TensorF& img, double cy, double cx, double r, float v) {
  const int H = static_cast<int>(img.shape().dim(0));
  const int W = static_cast<int>(img.shape().dim(1));
  const int y0 = std::max(0, static_cast<int>(cy - r - 1));
  const int y1 = std::min(H, static_cast<int>(cy + r + 2));
  const int x0 = std::max(0, static_cast<int>(cx - r - 1));
  const int x1 = std::min(W, static_cast<int>(cx + r + 2));
  for (int y = y0; y < y1; ++y)
    for (int x = x0; x < x1; ++x)
      if ((y - cy) * (y - cy) + (x - cx) * (x - cx) <= r * r) img.at2(y, x) = v;
}

// An articulated person: head circle, torso rect, two legs, two arms.
// Height `ph` pixels, anchored at top-left (y, x), brightness `v`.
void draw_person(TensorF& img, int y, int x, int ph, float v, Rng& rng) {
  const int head_r = std::max(1, ph / 8);
  const int torso_h = ph * 2 / 5;
  const int torso_w = std::max(2, ph / 4);
  const int leg_h = ph - 2 * head_r - torso_h;
  const int leg_w = std::max(1, torso_w / 3);
  const double lean = rng.uniform(-0.15, 0.15);  // slight pose variation
  const int cx = x + torso_w / 2;
  fill_circle(img, y + head_r, cx + lean * ph, head_r, v);
  fill_rect(img, y + 2 * head_r, x, torso_h, torso_w, v);
  // Arms: thin rects from shoulders.
  const int arm_l = torso_h * 3 / 4;
  fill_rect(img, y + 2 * head_r + 1, x - leg_w, arm_l, leg_w, v);
  fill_rect(img, y + 2 * head_r + 1, x + torso_w, arm_l, leg_w, v);
  // Legs: two rects with a gap.
  fill_rect(img, y + 2 * head_r + torso_h, x, leg_h, leg_w, v);
  fill_rect(img, y + 2 * head_r + torso_h, x + torso_w - leg_w, leg_h, leg_w, v);
}

void draw_distractor(TensorF& img, Rng& rng) {
  const int H = static_cast<int>(img.shape().dim(0));
  const int W = static_cast<int>(img.shape().dim(1));
  const float v = static_cast<float>(rng.uniform(0.2, 0.95));
  const int kind = static_cast<int>(rng.uniform_int(0, 2));
  const int size = std::max(2, static_cast<int>(rng.uniform(0.05, 0.3) * H));
  const int y = static_cast<int>(rng.uniform_int(0, std::max(0, H - size)));
  const int x = static_cast<int>(rng.uniform_int(0, std::max(0, W - size)));
  switch (kind) {
    case 0:  // box
      fill_rect(img, y, x, size, size, v);
      break;
    case 1:  // circle (no body attached: distinguishes from head+torso)
      fill_circle(img, y + size / 2.0, x + size / 2.0, size / 2.0, v);
      break;
    default:  // horizontal bar
      fill_rect(img, y, x, std::max(1, size / 4), size, v);
      break;
  }
}

}  // namespace

TensorF render_vww_image(const VwwConfig& cfg, bool person, Rng& rng) {
  const int R = cfg.resolution;
  TensorF img(Shape{R, R});
  // Smooth gradient background with random orientation.
  const double gx = rng.uniform(-0.3, 0.3), gy = rng.uniform(-0.3, 0.3);
  const float base = static_cast<float>(rng.uniform(0.25, 0.6));
  for (int y = 0; y < R; ++y)
    for (int x = 0; x < R; ++x)
      img.at2(y, x) = base + static_cast<float>(gx * x / R + gy * y / R);
  const int nd = static_cast<int>(rng.uniform_int(1, cfg.max_distractors));
  for (int i = 0; i < nd; ++i) draw_distractor(img, rng);
  if (person) {
    // Person height chosen so area fraction >= min_person_frac.
    const double min_h = std::sqrt(cfg.min_person_frac * R * R / 0.35);
    const int ph = std::max(6, static_cast<int>(rng.uniform(std::max(min_h, 6.0), R * 0.8)));
    const int tw = std::max(2, ph / 4);
    const int y = static_cast<int>(rng.uniform_int(0, std::max(0, R - ph)));
    const int x = static_cast<int>(rng.uniform_int(tw, std::max(tw, R - 2 * tw)));
    const float v = rng.bernoulli(0.5) ? 0.05f : 0.98f;  // dark or bright clothing
    draw_person(img, y, x, ph, v, rng);
  }
  // Sensor noise.
  for (int64_t i = 0; i < img.size(); ++i) {
    img[i] += cfg.noise_amplitude * static_cast<float>(rng.normal());
    img[i] = std::clamp(img[i], 0.f, 1.f);
  }
  return img;
}

Dataset make_vww_dataset(const VwwConfig& cfg, int examples_per_class,
                         uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.num_classes = 2;
  for (int cls = 0; cls < 2; ++cls) {
    for (int e = 0; e < examples_per_class; ++e) {
      Rng erng = rng.fork(static_cast<uint64_t>(cls) * 1000003 + static_cast<uint64_t>(e));
      Example ex;
      ex.input = render_vww_image(cfg, cls == 1, erng)
                     .reshaped(Shape{cfg.resolution, cfg.resolution, 1});
      ex.label = cls;
      ds.examples.push_back(std::move(ex));
    }
  }
  ds.input_shape = Shape{cfg.resolution, cfg.resolution, 1};
  shuffle(ds, rng);
  return ds;
}

}  // namespace mn::data
