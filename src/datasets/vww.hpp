// Synthetic Visual-Wake-Words dataset (binary person / no-person).
//
// Positive images contain an articulated "person" figure (head + torso +
// limbs) occupying at least ~0.5% of the frame, composited over a textured
// background with distractor shapes; negatives contain distractors only.
// Grayscale (the paper trades color for spatial resolution) in [0, 1].
#pragma once

#include "datasets/dataset.hpp"

namespace mn::data {

struct VwwConfig {
  int resolution = 50;          // paper: 50 (small MCU) or 160 (medium MCU)
  int max_distractors = 4;
  float noise_amplitude = 0.04f;
  double min_person_frac = 0.005;  // minimum person area fraction (paper: 0.5%)
};

// Render one image; `person` selects the positive class.
TensorF render_vww_image(const VwwConfig& cfg, bool person, Rng& rng);

// Balanced dataset: `examples_per_class` positives and negatives.
Dataset make_vww_dataset(const VwwConfig& cfg, int examples_per_class,
                         uint64_t seed);

}  // namespace mn::data
