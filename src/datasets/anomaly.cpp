#include "datasets/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "datasets/audio_synth.hpp"

namespace mn::data {

namespace {

struct MachineProfile {
  double base_freq;             // rotation fundamental (Hz)
  std::vector<float> harmonics; // amplitude per harmonic
};

MachineProfile machine_profile(int machine_id) {
  MachineProfile p;
  p.base_freq = 90.0 + 70.0 * machine_id + 25.0 * hash_unit(static_cast<uint64_t>(machine_id) * 31 + 7);
  p.harmonics.resize(8);
  for (size_t k = 0; k < p.harmonics.size(); ++k) {
    const double h =
        hash_unit(hash_combine(static_cast<uint64_t>(machine_id) * 17 + 3, k * 131 + 5));
    p.harmonics[k] = static_cast<float>((0.2 + 0.8 * h) / static_cast<double>(k + 1));
  }
  return p;
}

}  // namespace

std::vector<float> synth_machine_waveform(const AnomalyConfig& cfg,
                                          int machine_id, bool anomalous,
                                          Rng& rng) {
  if (machine_id < 0 || machine_id >= cfg.num_machines)
    throw std::invalid_argument("synth_machine_waveform: bad machine id");
  const size_t n = static_cast<size_t>(cfg.sample_rate * cfg.clip_seconds);
  std::vector<float> sig(n, 0.f);
  MachineProfile p = machine_profile(machine_id);
  // Small load-dependent speed drift per clip.
  double speed = 1.0 + 0.03 * rng.normal();
  // Anomalies come in two flavours (as in real machine-fault corpora):
  //  - type 0, "tonal": strong sidebands at non-integer harmonic multiples
  //    plus periodic clicks — far off the normal manifold, so both
  //    reconstruction- and classification-based detectors see it;
  //  - type 1, "profile drift": the machine's resonance profile drifts
  //    toward another machine's signature with an off-nominal speed — the
  //    clip still looks like *a* healthy machine (autoencoders struggle)
  //    but no longer like *this* machine (the self-supervised ID classifier
  //    catches it). This gap is what Table 3 measures.
  const int fault_type = anomalous ? (rng.bernoulli(0.5) ? 0 : 1) : -1;
  if (fault_type == 1) {
    const MachineProfile other =
        machine_profile((machine_id + 1 + static_cast<int>(rng.uniform_int(0, cfg.num_machines - 2))) %
                        cfg.num_machines);
    for (size_t k = 0; k < p.harmonics.size(); ++k)
      p.harmonics[k] = 0.4f * p.harmonics[k] + 0.6f * other.harmonics[k];
    p.base_freq = 0.5 * p.base_freq + 0.5 * other.base_freq;
    speed *= 1.0 + 0.05 * rng.normal();
  }
  add_harmonics(sig, p.base_freq * speed, p.harmonics, cfg.sample_rate,
                rng.uniform(0, 6.28));
  add_noise(sig, cfg.noise_amplitude, rng);
  if (fault_type == 0) {
    std::vector<float> extra = {0.55f, 0.4f, 0.3f};
    add_harmonics(sig, p.base_freq * speed * 2.43, extra, cfg.sample_rate);
    const size_t period =
        static_cast<size_t>(cfg.sample_rate / (p.base_freq * speed) * 3.7);
    add_impulse_train(sig, period, cfg.fault_impulse_amp, 120, rng);
  }
  normalize_peak(sig);
  return sig;
}

std::vector<TensorF> anomaly_patches(const AnomalyConfig& cfg,
                                     std::span<const float> waveform) {
  TensorF logmel = dsp::log_mel_spectrogram(waveform, cfg.mel);
  const int total_frames = static_cast<int>(logmel.shape().dim(0));
  const int bins = static_cast<int>(logmel.shape().dim(1));
  const int step = cfg.spec_frames - cfg.frame_overlap;
  std::vector<TensorF> out;
  for (int start = 0; start + cfg.spec_frames <= total_frames; start += step) {
    TensorF img(Shape{cfg.spec_frames, bins});
    for (int t = 0; t < cfg.spec_frames; ++t)
      for (int b = 0; b < bins; ++b) img.at2(t, b) = logmel.at2(start + t, b);
    TensorF small = dsp::bilinear_resize(img, cfg.image_size, cfg.image_size);
    // Per-patch standardization keeps inputs in a stable range for QAT.
    double mean = 0, var = 0;
    for (int64_t i = 0; i < small.size(); ++i) mean += small[i];
    mean /= static_cast<double>(small.size());
    for (int64_t i = 0; i < small.size(); ++i)
      var += (small[i] - mean) * (small[i] - mean);
    var = std::max(var / static_cast<double>(small.size()), 1e-6);
    const float inv = static_cast<float>(1.0 / std::sqrt(var));
    for (int64_t i = 0; i < small.size(); ++i)
      small[i] = (small[i] - static_cast<float>(mean)) * inv;
    out.push_back(small.reshaped(Shape{cfg.image_size, cfg.image_size, 1}));
  }
  return out;
}

namespace {

Dataset make_anomaly_set(const AnomalyConfig& cfg, int clips_per_machine,
                         uint64_t seed, bool include_anomalies) {
  Rng rng(seed);
  Dataset ds;
  ds.num_classes = cfg.num_machines;
  ds.input_shape = Shape{cfg.image_size, cfg.image_size, 1};
  for (int m = 0; m < cfg.num_machines; ++m) {
    for (int c = 0; c < clips_per_machine; ++c) {
      Rng crng = rng.fork(static_cast<uint64_t>(m) * 7001 + static_cast<uint64_t>(c));
      const bool anomalous = include_anomalies && (c % 2 == 1);
      const auto wave = synth_machine_waveform(cfg, m, anomalous, crng);
      for (auto& patch : anomaly_patches(cfg, wave)) {
        Example ex;
        ex.input = std::move(patch);
        ex.label = m;
        ex.anomaly = anomalous;
        ds.examples.push_back(std::move(ex));
      }
    }
  }
  shuffle(ds, rng);
  return ds;
}

}  // namespace

Dataset make_anomaly_ae_set(const AnomalyConfig& cfg, int clips_per_machine,
                            uint64_t seed, bool include_anomalies,
                            int ae_frames) {
  Rng rng(seed ^ 0xAE5EED);
  Dataset ds;
  ds.num_classes = cfg.num_machines;
  const int64_t dim = static_cast<int64_t>(ae_frames) * cfg.mel.num_mel_bins;
  ds.input_shape = Shape{dim};
  for (int m = 0; m < cfg.num_machines; ++m) {
    for (int c = 0; c < clips_per_machine; ++c) {
      Rng crng = rng.fork(static_cast<uint64_t>(m) * 9001 + static_cast<uint64_t>(c));
      const bool anomalous = include_anomalies && (c % 2 == 1);
      const auto wave = synth_machine_waveform(cfg, m, anomalous, crng);
      TensorF logmel = dsp::log_mel_spectrogram(wave, cfg.mel);
      const int frames = static_cast<int>(logmel.shape().dim(0));
      const int bins = static_cast<int>(logmel.shape().dim(1));
      // Global scaling keeps reconstruction targets in a trainable range.
      for (int64_t i = 0; i < logmel.size(); ++i) logmel[i] = logmel[i] * 0.1f;
      for (int start = 0; start + ae_frames <= frames; start += ae_frames) {
        Example ex;
        ex.input = TensorF(Shape{dim});
        for (int t = 0; t < ae_frames; ++t)
          for (int b = 0; b < bins; ++b)
            ex.input[static_cast<int64_t>(t) * bins + b] = logmel.at2(start + t, b);
        ex.label = m;
        ex.anomaly = anomalous;
        ds.examples.push_back(std::move(ex));
      }
    }
  }
  shuffle(ds, rng);
  return ds;
}

Dataset make_anomaly_train(const AnomalyConfig& cfg, int clips_per_machine,
                           uint64_t seed) {
  return make_anomaly_set(cfg, clips_per_machine, seed, /*include_anomalies=*/false);
}

Dataset make_anomaly_test(const AnomalyConfig& cfg, int clips_per_machine,
                          uint64_t seed) {
  return make_anomaly_set(cfg, clips_per_machine, seed, /*include_anomalies=*/true);
}

}  // namespace mn::data
