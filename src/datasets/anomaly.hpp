// Synthetic industrial-machine-sound anomaly dataset (MIMII Slide Rail analog).
//
// Four machine IDs, each with a distinct base rotation frequency and harmonic
// amplitude profile. Normal clips are steady hum + broadband noise; anomalous
// clips add bearing-fault-like impulsive bursts and harmonic distortion.
// Following the paper (§4.3), the task is reformulated as self-supervised
// machine-ID classification: train on normal clips with ID labels; at test
// time the anomaly score is the negative softmax confidence for the clip's ID.
//
// Front-end matches the paper: 64 ms frames / 32 ms hop, 64 log-mel bins,
// 64 stacked frames -> 64x64 image (next window overlaps 44 frames),
// bilinearly downsampled to 32x32.
#pragma once

#include "datasets/dataset.hpp"
#include "dsp/mel.hpp"

namespace mn::data {

struct AnomalyConfig {
  int sample_rate = 16000;
  double clip_seconds = 2.2;   // >= one 64-frame window; paper uses 10 s clips
  int num_machines = 4;
  int spec_frames = 64;        // frames stacked per image
  int frame_overlap = 44;      // overlap between successive images
  int image_size = 32;         // bilinear downsample target
  float noise_amplitude = 0.08f;
  float fault_impulse_amp = 0.2f;
  dsp::MelConfig mel{16000, 1024, 512, 64, 0, 20.0, 7600.0, 1e-12};
};

// Synthesize one machine-sound clip.
std::vector<float> synth_machine_waveform(const AnomalyConfig& cfg,
                                          int machine_id, bool anomalous,
                                          Rng& rng);

// Waveform -> vector of [image_size, image_size, 1] spectrogram patches.
std::vector<TensorF> anomaly_patches(const AnomalyConfig& cfg,
                                     std::span<const float> waveform);

// Train set: normal clips only, labeled with machine ID (self-supervised).
Dataset make_anomaly_train(const AnomalyConfig& cfg, int clips_per_machine,
                           uint64_t seed);

// Test set: mixed normal/anomalous patches; `label` is machine ID and
// `anomaly` the ground-truth flag used for ROC-AUC.
Dataset make_anomaly_test(const AnomalyConfig& cfg, int clips_per_machine,
                          uint64_t seed);

// Autoencoder view of the same task (the FC-AE baseline of Purohit et al.
// 2019): each example is `ae_frames` consecutive log-mel frames flattened
// into one vector (default 10 x 64 = 640 features), anomaly score =
// reconstruction error.
Dataset make_anomaly_ae_set(const AnomalyConfig& cfg, int clips_per_machine,
                            uint64_t seed, bool include_anomalies,
                            int ae_frames = 10);

}  // namespace mn::data
