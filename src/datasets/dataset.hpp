// Labeled example container and dataset utilities shared by all three tasks.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace mn::data {

struct Example {
  TensorF input;       // NHWC without batch dim: [h, w, c] (rank treated as 4 with n=1 downstream)
  int label = 0;       // class index (machine ID for AD)
  bool anomaly = false;  // AD only: ground-truth anomaly flag for test clips
};

struct Dataset {
  std::vector<Example> examples;
  Shape input_shape;   // [h, w, c]
  int num_classes = 0;

  int64_t size() const { return static_cast<int64_t>(examples.size()); }
};

// Fisher-Yates shuffle with an explicit seed.
void shuffle(Dataset& ds, Rng& rng);

// Same draws and swaps as `shuffle`, additionally applied to `order` (which
// must have ds.size() entries). Training loops track the cumulative
// permutation this way so a crash journal can restore the exact example
// ordering at an epoch boundary.
void shuffle_tracked(Dataset& ds, Rng& rng, std::vector<int64_t>& order);

// Split off the last `fraction` of examples as a second dataset.
std::pair<Dataset, Dataset> split(const Dataset& ds, double test_fraction);

// Stack examples[first, first+count) into a rank-4 NHWC batch tensor and a
// label vector. Count is clamped to the dataset end.
struct Batch {
  TensorF inputs;             // [n, h, w, c]
  std::vector<int> labels;    // n
};
Batch make_batch(const Dataset& ds, int64_t first, int64_t count);

}  // namespace mn::data
