#include "datasets/audio_synth.hpp"

#include <algorithm>
#include <cmath>

namespace mn::data {

namespace {
// Raised-cosine attack/decay envelope over a segment of length n.
double segment_env(size_t i, size_t n) {
  if (n == 0) return 0.0;
  const double x = static_cast<double>(i) / static_cast<double>(n);
  const double ramp = 0.1;  // 10% attack, 10% decay
  if (x < ramp) return 0.5 - 0.5 * std::cos(M_PI * x / ramp);
  if (x > 1.0 - ramp) return 0.5 - 0.5 * std::cos(M_PI * (1.0 - x) / ramp);
  return 1.0;
}
}  // namespace

void add_noise(std::span<float> signal, float amplitude, Rng& rng) {
  for (float& s : signal)
    s += amplitude * static_cast<float>(rng.normal());
}

void add_tone(std::span<float> signal, double freq_hz, float amp, int sample_rate,
              size_t start, size_t length, double phase) {
  const size_t end = std::min(signal.size(), start + length);
  const double w = 2.0 * M_PI * freq_hz / sample_rate;
  for (size_t i = start; i < end; ++i) {
    const double env = segment_env(i - start, length);
    signal[i] += amp * static_cast<float>(env * std::sin(w * static_cast<double>(i) + phase));
  }
}

void add_chirp(std::span<float> signal, double f0_hz, double f1_hz, float amp,
               int sample_rate, size_t start, size_t length) {
  const size_t end = std::min(signal.size(), start + length);
  for (size_t i = start; i < end; ++i) {
    const double t = static_cast<double>(i - start) / sample_rate;
    const double dur = static_cast<double>(length) / sample_rate;
    const double f = f0_hz + (f1_hz - f0_hz) * (t / dur) * 0.5;  // instantaneous phase integral
    const double env = segment_env(i - start, length);
    signal[i] += amp * static_cast<float>(env * std::sin(2.0 * M_PI * f * t));
  }
}

void add_harmonics(std::span<float> signal, double f0_hz,
                   std::span<const float> amps, int sample_rate, double phase) {
  for (size_t k = 0; k < amps.size(); ++k) {
    const double w = 2.0 * M_PI * f0_hz * static_cast<double>(k + 1) / sample_rate;
    for (size_t i = 0; i < signal.size(); ++i)
      signal[i] += amps[k] * static_cast<float>(std::sin(w * static_cast<double>(i) + phase * static_cast<double>(k + 1)));
  }
}

void add_impulse_train(std::span<float> signal, size_t period, float amp,
                       size_t burst_len, Rng& rng) {
  if (period == 0) return;
  for (size_t t = period / 2; t < signal.size(); t += period) {
    for (size_t j = 0; j < burst_len && t + j < signal.size(); ++j) {
      const double decay = std::exp(-3.0 * static_cast<double>(j) / static_cast<double>(burst_len));
      signal[t + j] += amp * static_cast<float>(decay * rng.normal());
    }
  }
}

void normalize_peak(std::span<float> signal, float peak) {
  float m = 0.f;
  for (float s : signal) m = std::max(m, std::abs(s));
  if (m <= 0.f) return;
  const float g = peak / m;
  for (float& s : signal) s *= g;
}

}  // namespace mn::data
