// Synthetic keyword-spotting dataset (Google Speech Commands v2 analog).
//
// 12 classes: 10 keywords + "silence" + "unknown" (25 held-out word
// signatures), matching the TinyMLPerf KWS task. Each keyword is a
// deterministic two-segment formant signature; examples add background noise
// and random timing jitter (the paper's augmentations). The waveform is
// converted to MFCC features with the paper's front-end (40 ms frames, 20 ms
// stride, 10 coefficients), giving a [49, 10, 1] input for 1 s @ 16 kHz.
#pragma once

#include "datasets/dataset.hpp"
#include "dsp/mel.hpp"

namespace mn::data {

struct KwsConfig {
  int sample_rate = 16000;
  double clip_seconds = 1.0;
  int num_keywords = 10;       // dedicated classes
  int num_unknown_words = 25;  // folded into the single "unknown" class
  float noise_amplitude = 0.05f;
  int max_jitter_ms = 100;     // random time shift of the word
  dsp::MelConfig mel{16000, 640, 320, 40, 10, 20.0, 7600.0, 1e-12};

  int num_classes() const { return num_keywords + 2; }  // + silence + unknown
  int silence_label() const { return num_keywords; }
  int unknown_label() const { return num_keywords + 1; }
};

// Synthesize the raw waveform for keyword `word_id` (0..num_keywords +
// num_unknown_words - 1; ids >= num_keywords are "unknown" words).
std::vector<float> synth_keyword_waveform(const KwsConfig& cfg, int word_id,
                                          Rng& rng);

// Feature extraction used by both dataset generation and the examples:
// waveform -> MFCC image [frames, num_mfcc, 1].
TensorF kws_features(const KwsConfig& cfg, std::span<const float> waveform);

// Generate a balanced dataset of `examples_per_class` examples per class.
Dataset make_kws_dataset(const KwsConfig& cfg, int examples_per_class,
                         uint64_t seed);

}  // namespace mn::data
