#include "datasets/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace mn::data {

void shuffle(Dataset& ds, Rng& rng) {
  for (int64_t i = ds.size() - 1; i > 0; --i) {
    const int64_t j = rng.uniform_int(0, i);
    std::swap(ds.examples[static_cast<size_t>(i)], ds.examples[static_cast<size_t>(j)]);
  }
}

void shuffle_tracked(Dataset& ds, Rng& rng, std::vector<int64_t>& order) {
  for (int64_t i = ds.size() - 1; i > 0; --i) {
    const int64_t j = rng.uniform_int(0, i);
    std::swap(ds.examples[static_cast<size_t>(i)], ds.examples[static_cast<size_t>(j)]);
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
  }
}

std::pair<Dataset, Dataset> split(const Dataset& ds, double test_fraction) {
  if (test_fraction < 0.0 || test_fraction > 1.0)
    throw std::invalid_argument("split: fraction out of range");
  const int64_t n_test = static_cast<int64_t>(static_cast<double>(ds.size()) * test_fraction);
  const int64_t n_train = ds.size() - n_test;
  Dataset train{{}, ds.input_shape, ds.num_classes};
  Dataset test{{}, ds.input_shape, ds.num_classes};
  train.examples.assign(ds.examples.begin(), ds.examples.begin() + n_train);
  test.examples.assign(ds.examples.begin() + n_train, ds.examples.end());
  return {std::move(train), std::move(test)};
}

Batch make_batch(const Dataset& ds, int64_t first, int64_t count) {
  if (first < 0 || first >= ds.size())
    throw std::out_of_range("make_batch: first out of range");
  count = std::min(count, ds.size() - first);
  const Shape& s = ds.input_shape;
  Batch b;
  // Prepend the batch dimension to the per-example feature shape (rank-3
  // NHWC images or rank-1 vectors).
  if (s.rank() == 3)
    b.inputs = TensorF(Shape{count, s.dim(0), s.dim(1), s.dim(2)});
  else if (s.rank() == 1)
    b.inputs = TensorF(Shape{count, s.dim(0)});
  else
    throw std::invalid_argument("make_batch: unsupported feature rank");
  b.labels.resize(static_cast<size_t>(count));
  const int64_t per = s.elements();
  for (int64_t i = 0; i < count; ++i) {
    const Example& e = ds.examples[static_cast<size_t>(first + i)];
    if (e.input.shape() != s)
      throw std::invalid_argument("make_batch: example shape mismatch");
    std::copy(e.input.data(), e.input.data() + per, b.inputs.data() + i * per);
    b.labels[static_cast<size_t>(i)] = e.label;
  }
  return b;
}

}  // namespace mn::data
