#include "datasets/kws.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "datasets/audio_synth.hpp"

namespace mn::data {

namespace {

// Deterministic per-word signature: two formant-like segments whose
// frequencies and a final chirp direction are derived from the word id.
struct WordSignature {
  double f1, f2;    // segment base frequencies (Hz)
  double f3_start, f3_end;  // closing chirp
  double seg_split;  // fraction of word duration in segment 1
};

WordSignature word_signature(int word_id) {
  // Spread signatures over 300..3500 Hz with a low-discrepancy pattern so
  // classes are acoustically distinct but overlap in band (keeps the task
  // non-trivial, like real speech).
  const double a = hash_unit(static_cast<uint64_t>(word_id) * 7919 + 13);
  const double b = hash_unit(static_cast<uint64_t>(word_id) * 104729 + 101);
  const double c = hash_unit(static_cast<uint64_t>(word_id) * 1299709 + 997);
  WordSignature s;
  s.f1 = 300.0 + 1500.0 * a;
  s.f2 = 800.0 + 2200.0 * b;
  s.f3_start = s.f2;
  s.f3_end = c > 0.5 ? s.f2 * 1.6 : s.f2 * 0.6;
  s.seg_split = 0.35 + 0.3 * c;
  return s;
}

}  // namespace

std::vector<float> synth_keyword_waveform(const KwsConfig& cfg, int word_id,
                                          Rng& rng) {
  const size_t n = static_cast<size_t>(cfg.sample_rate * cfg.clip_seconds);
  std::vector<float> sig(n, 0.f);
  const WordSignature w = word_signature(word_id);
  // Word occupies ~60% of the clip, shifted by random jitter.
  const size_t word_len = static_cast<size_t>(0.6 * static_cast<double>(n));
  const int max_jit = cfg.max_jitter_ms * cfg.sample_rate / 1000;
  const int64_t base_start = static_cast<int64_t>((n - word_len) / 2);
  const int64_t jit = rng.uniform_int(-max_jit, max_jit);
  const size_t start = static_cast<size_t>(
      std::clamp<int64_t>(base_start + jit, 0, static_cast<int64_t>(n - word_len)));
  const size_t seg1 = static_cast<size_t>(w.seg_split * static_cast<double>(word_len));
  const size_t seg2 = word_len - seg1;
  // Small per-utterance pitch variation (speaker variation analog).
  const double pitch = 1.0 + 0.05 * rng.normal();
  add_tone(sig, w.f1 * pitch, 0.8f, cfg.sample_rate, start, seg1, rng.uniform(0, 6.28));
  add_tone(sig, w.f1 * pitch * 2.1, 0.3f, cfg.sample_rate, start, seg1);
  add_tone(sig, w.f2 * pitch, 0.7f, cfg.sample_rate, start + seg1, seg2 / 2);
  add_chirp(sig, w.f3_start * pitch, w.f3_end * pitch, 0.6f, cfg.sample_rate,
            start + seg1 + seg2 / 2, seg2 - seg2 / 2);
  add_noise(sig, cfg.noise_amplitude * static_cast<float>(0.5 + rng.uniform()), rng);
  normalize_peak(sig);
  return sig;
}

TensorF kws_features(const KwsConfig& cfg, std::span<const float> waveform) {
  TensorF m = dsp::mfcc(waveform, cfg.mel);
  const int64_t frames = m.shape().dim(0);
  const int64_t coeffs = m.shape().dim(1);
  return m.reshaped(Shape{frames, coeffs, 1});
}

Dataset make_kws_dataset(const KwsConfig& cfg, int examples_per_class,
                         uint64_t seed) {
  if (examples_per_class <= 0)
    throw std::invalid_argument("make_kws_dataset: examples_per_class");
  Rng rng(seed);
  Dataset ds;
  ds.num_classes = cfg.num_classes();
  for (int cls = 0; cls < ds.num_classes; ++cls) {
    for (int e = 0; e < examples_per_class; ++e) {
      Rng erng = rng.fork(static_cast<uint64_t>(cls) * 100003 + static_cast<uint64_t>(e));
      std::vector<float> sig;
      if (cls == cfg.silence_label()) {
        sig.assign(static_cast<size_t>(cfg.sample_rate * cfg.clip_seconds), 0.f);
        add_noise(sig, cfg.noise_amplitude * 2.f * static_cast<float>(0.2 + erng.uniform()), erng);
      } else if (cls == cfg.unknown_label()) {
        const int unk = cfg.num_keywords +
                        static_cast<int>(erng.uniform_int(0, cfg.num_unknown_words - 1));
        sig = synth_keyword_waveform(cfg, unk, erng);
      } else {
        sig = synth_keyword_waveform(cfg, cls, erng);
      }
      Example ex;
      ex.input = kws_features(cfg, sig);
      ex.label = cls;
      ds.examples.push_back(std::move(ex));
    }
  }
  ds.input_shape = ds.examples.front().input.shape();
  shuffle(ds, rng);
  return ds;
}

}  // namespace mn::data
