// Synthetic audio building blocks: tones, chirps, envelopes, noise.
//
// Used to synthesize Google-Speech-Commands-like keywords and MIMII-like
// machine sounds (see DESIGN.md §1 for the substitution rationale).
#pragma once

#include <span>
#include <vector>

#include "tensor/rng.hpp"

namespace mn::data {

// Add white Gaussian noise of the given amplitude in place.
void add_noise(std::span<float> signal, float amplitude, Rng& rng);

// Add a sine tone: signal[i] += amp * env(i) * sin(2*pi*f*i/sr + phase),
// restricted to [start, start+length) samples. `env` is an attack/decay
// envelope (raised cosine) over the segment.
void add_tone(std::span<float> signal, double freq_hz, float amp, int sample_rate,
              size_t start, size_t length, double phase = 0.0);

// Add a linear chirp from f0 to f1 over [start, start+length).
void add_chirp(std::span<float> signal, double f0_hz, double f1_hz, float amp,
               int sample_rate, size_t start, size_t length);

// Add amplitude-modulated harmonics of a base rotation frequency:
// sum_k amps[k] * sin(2*pi*(k+1)*f0*t). Models steady machine hum.
void add_harmonics(std::span<float> signal, double f0_hz,
                   std::span<const float> amps, int sample_rate,
                   double phase = 0.0);

// Add periodic impulsive bursts (bearing-fault-like clicks): every
// `period` samples, an exponentially decaying noise burst of given amplitude.
void add_impulse_train(std::span<float> signal, size_t period, float amp,
                       size_t burst_len, Rng& rng);

// Peak-normalize to the given maximum absolute value (no-op on silence).
void normalize_peak(std::span<float> signal, float peak = 0.9f);

}  // namespace mn::data
