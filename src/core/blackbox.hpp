// Black-box architecture search baselines over the same supernets the DNAS
// uses: one-shot (weight-sharing) supernet training followed by evolutionary
// or random search with hard constraint filtering — the MCUNet-style
// pipeline the paper contrasts DNAS against (§2, §6.5).
#pragma once

#include <functional>
#include <vector>

#include "core/dnas.hpp"
#include "core/supernet.hpp"
#include "datasets/dataset.hpp"

namespace mn::core {

// ArchSample (one option index per decision) lives in core/dnas.hpp so the
// DNAS candidate-cost fan-out and the black-box searches share it.

// Freezes the supernet's decision nodes to `arch` (logits one-hot, context
// frozen): subsequent forwards evaluate exactly that architecture with the
// shared supernet weights.
void apply_arch(Supernet& net, const ArchSample& arch);

// Uniformly random architecture from the search space.
ArchSample random_arch(const Supernet& net, Rng& rng);

// Cost of a frozen architecture (must be applied first; uses the decision
// weights from the most recent forward).
CostBreakdown arch_cost(Supernet& net, const ArchSample& arch);

struct OneShotConfig {
  int epochs = 10;
  int64_t batch_size = 32;
  double lr_start = 0.05;
  double lr_end = 1e-4;
  double weight_decay = 1e-3;
  uint64_t seed = 1;
};

// One-shot supernet training: every batch samples a random architecture and
// updates only the shared weights (the weight-sharing trick that makes
// black-box search affordable).
void train_supernet_one_shot(Supernet& net, const data::Dataset& train,
                             const OneShotConfig& cfg);

// Validation accuracy of an architecture under the shared weights.
double evaluate_arch(Supernet& net, const ArchSample& arch,
                     const data::Dataset& val, int64_t batch_size = 64);

struct SearchConfig {
  int population = 16;
  int generations = 8;
  double mutation_rate = 0.25;
  int evaluations = 128;  // budget for random search
  uint64_t seed = 1;
  DnasConstraints constraints;  // hard feasibility filter (budgets only)
};

struct SearchResult {
  ArchSample best;
  double best_accuracy = 0.0;
  CostBreakdown best_cost;
  int evaluations_used = 0;
  bool feasible = false;
};

// True if the architecture's expected cost fits every enabled budget.
bool is_feasible(Supernet& net, const ArchSample& arch,
                 const DnasConstraints& cn);

// Evolutionary search (tournament selection + mutation + uniform crossover)
// over feasible architectures, fitness = one-shot validation accuracy.
SearchResult evolutionary_search(Supernet& net, const data::Dataset& val,
                                 const SearchConfig& cfg);

// Random search with the same feasibility filter and evaluation budget.
SearchResult random_search(Supernet& net, const data::Dataset& val,
                           const SearchConfig& cfg);

}  // namespace mn::core
