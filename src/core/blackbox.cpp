#include "core/blackbox.hpp"

#include <algorithm>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace mn::core {

void apply_arch(Supernet& net, const ArchSample& arch) {
  if (arch.width_choices.size() != net.width_decisions.size() ||
      arch.skip_choices.size() != net.skip_decisions.size())
    throw std::invalid_argument("apply_arch: arity mismatch with supernet");
  net.ctx().arch_frozen = true;
  for (size_t i = 0; i < net.width_decisions.size(); ++i) {
    MaskFromLogits* d = net.width_decisions[i];
    const int k = arch.width_choices[i];
    if (k < 0 || k >= d->num_options())
      throw std::invalid_argument("apply_arch: width choice out of range");
    d->logits().value.fill(0.f);
    d->logits().value[k] = 10.f;
  }
  for (size_t i = 0; i < net.skip_decisions.size(); ++i) {
    BranchMix* d = net.skip_decisions[i];
    const int k = arch.skip_choices[i];
    if (k < 0 || k >= d->num_options())
      throw std::invalid_argument("apply_arch: skip choice out of range");
    d->logits().value.fill(0.f);
    d->logits().value[k] = 10.f;
  }
}

ArchSample random_arch(const Supernet& net, Rng& rng) {
  ArchSample a;
  for (const MaskFromLogits* d : net.width_decisions)
    a.width_choices.push_back(static_cast<int>(rng.uniform_int(0, d->num_options() - 1)));
  for (const BranchMix* d : net.skip_decisions)
    a.skip_choices.push_back(static_cast<int>(rng.uniform_int(0, d->num_options() - 1)));
  return a;
}

namespace {
// Recomputes every decision node's stored weights for the frozen selection.
void refresh_decisions(Supernet& net) {
  for (MaskFromLogits* d : net.width_decisions) d->refresh();
  for (BranchMix* d : net.skip_decisions) d->refresh();
}
}  // namespace

CostBreakdown arch_cost(Supernet& net, const ArchSample& arch) {
  apply_arch(net, arch);
  refresh_decisions(net);
  return evaluate_cost(net);
}

void train_supernet_one_shot(Supernet& net, const data::Dataset& train,
                             const OneShotConfig& cfg) {
  Rng rng(cfg.seed);
  data::Dataset ds = train;
  auto all_params = net.graph.params();
  std::vector<nn::Param*> weight_params;
  for (nn::Param* p : all_params)
    if (p->group == nn::ParamGroup::kWeights) weight_params.push_back(p);
  const int64_t steps_per_epoch =
      std::max<int64_t>(1, (ds.size() + cfg.batch_size - 1) / cfg.batch_size);
  nn::CosineSchedule sched(cfg.lr_start, cfg.lr_end, steps_per_epoch * cfg.epochs);
  nn::SgdMomentum opt(0.9, cfg.weight_decay);
  int64_t step = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    data::shuffle(ds, rng);
    for (int64_t first = 0; first < ds.size(); first += cfg.batch_size) {
      // Weight-sharing: a fresh random subnetwork per batch.
      apply_arch(net, random_arch(net, rng));
      const data::Batch batch = data::make_batch(ds, first, cfg.batch_size);
      net.graph.zero_grads();
      const TensorF logits = net.graph.forward(batch.inputs, /*training=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
      net.graph.backward(lr.grad);
      opt.step(weight_params, sched.lr(step));
      ++step;
    }
  }
}

double evaluate_arch(Supernet& net, const ArchSample& arch,
                     const data::Dataset& val, int64_t batch_size) {
  apply_arch(net, arch);
  int64_t correct = 0;
  for (int64_t first = 0; first < val.size(); first += batch_size) {
    const data::Batch batch = data::make_batch(val, first, batch_size);
    const TensorF logits = net.graph.forward(batch.inputs, /*training=*/false);
    const int64_t n = logits.shape().dim(0);
    correct += static_cast<int64_t>(
        std::llround(nn::accuracy(logits, batch.labels) * static_cast<double>(n)));
  }
  return static_cast<double>(correct) / static_cast<double>(val.size());
}

bool is_feasible(Supernet& net, const ArchSample& arch,
                 const DnasConstraints& cn) {
  apply_arch(net, arch);
  refresh_decisions(net);
  const CostBreakdown cost = evaluate_cost(net);
  if (cn.flash_budget_bytes > 0 &&
      cost.expected_flash_bytes > static_cast<double>(cn.flash_budget_bytes))
    return false;
  if (cn.ops_budget > 0 && cost.expected_ops > static_cast<double>(cn.ops_budget))
    return false;
  if (cn.sram_budget_bytes > 0 &&
      cost.peak_working_memory > static_cast<double>(cn.sram_budget_bytes))
    return false;
  return true;
}

namespace {

// Shared helper: record an evaluated candidate into the running best.
void consider(Supernet& net, const ArchSample& arch, const data::Dataset& val,
              SearchResult* result) {
  const double acc = evaluate_arch(net, arch, val);
  ++result->evaluations_used;
  if (!result->feasible || acc > result->best_accuracy) {
    result->best = arch;
    result->best_accuracy = acc;
    refresh_decisions(net);
    result->best_cost = evaluate_cost(net);
    result->feasible = true;
  }
}

ArchSample mutate(const ArchSample& a, const Supernet& net, double rate, Rng& rng) {
  ArchSample out = a;
  for (size_t i = 0; i < out.width_choices.size(); ++i)
    if (rng.bernoulli(rate))
      out.width_choices[i] = static_cast<int>(
          rng.uniform_int(0, net.width_decisions[i]->num_options() - 1));
  for (size_t i = 0; i < out.skip_choices.size(); ++i)
    if (rng.bernoulli(rate))
      out.skip_choices[i] = static_cast<int>(
          rng.uniform_int(0, net.skip_decisions[i]->num_options() - 1));
  return out;
}

ArchSample crossover(const ArchSample& a, const ArchSample& b, Rng& rng) {
  ArchSample out = a;
  for (size_t i = 0; i < out.width_choices.size(); ++i)
    if (rng.bernoulli(0.5)) out.width_choices[i] = b.width_choices[i];
  for (size_t i = 0; i < out.skip_choices.size(); ++i)
    if (rng.bernoulli(0.5)) out.skip_choices[i] = b.skip_choices[i];
  return out;
}

// Draws a feasible random architecture (bounded retries).
bool feasible_random(Supernet& net, const DnasConstraints& cn, Rng& rng,
                     ArchSample* out) {
  for (int tries = 0; tries < 200; ++tries) {
    ArchSample a = random_arch(net, rng);
    if (is_feasible(net, a, cn)) {
      *out = a;
      return true;
    }
  }
  return false;
}

}  // namespace

SearchResult evolutionary_search(Supernet& net, const data::Dataset& val,
                                 const SearchConfig& cfg) {
  Rng rng(cfg.seed);
  SearchResult result;
  // Seed a feasible population.
  std::vector<std::pair<ArchSample, double>> population;
  for (int i = 0; i < cfg.population; ++i) {
    ArchSample a;
    if (!feasible_random(net, cfg.constraints, rng, &a)) continue;
    const double acc = evaluate_arch(net, a, val);
    ++result.evaluations_used;
    population.emplace_back(a, acc);
  }
  if (population.empty()) return result;  // infeasible space
  for (const auto& [a, acc] : population)
    if (!result.feasible || acc > result.best_accuracy) {
      result.best = a;
      result.best_accuracy = acc;
      result.feasible = true;
    }

  for (int gen = 0; gen < cfg.generations; ++gen) {
    // Tournament parents.
    auto pick = [&]() -> const ArchSample& {
      const auto& a = population[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(population.size()) - 1))];
      const auto& b = population[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(population.size()) - 1))];
      return a.second >= b.second ? a.first : b.first;
    };
    std::vector<std::pair<ArchSample, double>> next = population;
    for (int child = 0; child < cfg.population / 2; ++child) {
      ArchSample c = mutate(crossover(pick(), pick(), rng), net,
                            cfg.mutation_rate, rng);
      if (!is_feasible(net, c, cfg.constraints)) continue;
      const double acc = evaluate_arch(net, c, val);
      ++result.evaluations_used;
      next.emplace_back(c, acc);
      if (acc > result.best_accuracy) {
        result.best = c;
        result.best_accuracy = acc;
        result.feasible = true;
      }
    }
    // Elitist truncation back to the population size.
    std::sort(next.begin(), next.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    if (static_cast<int>(next.size()) > cfg.population)
      next.resize(static_cast<size_t>(cfg.population));
    population = std::move(next);
  }
  // Final cost snapshot for the winner.
  apply_arch(net, result.best);
  refresh_decisions(net);
  result.best_cost = evaluate_cost(net);
  return result;
}

SearchResult random_search(Supernet& net, const data::Dataset& val,
                           const SearchConfig& cfg) {
  Rng rng(cfg.seed ^ 0xBADC0DE);
  SearchResult result;
  for (int i = 0; i < cfg.evaluations; ++i) {
    ArchSample a;
    if (!feasible_random(net, cfg.constraints, rng, &a)) break;
    consider(net, a, val, &result);
  }
  if (result.feasible) {
    apply_arch(net, result.best);
    refresh_decisions(net);
    result.best_cost = evaluate_cost(net);
  }
  return result;
}

}  // namespace mn::core
