// Supernet construction for DNAS (§5.2): width-searchable DS-CNN backbones
// (KWS, AD) and width-searchable sequential-IBN MobileNetV2 backbones (VWW),
// plus the differentiable cost model used by the MCU constraints (§5.1.1-2).
#pragma once

#include <memory>
#include <vector>

#include "core/decision.hpp"
#include "mcu/device.hpp"
#include "models/backbones.hpp"
#include "nn/graph.hpp"

namespace mn::core {

// Cost-model entry for one searchable (or fixed) MAC layer of the supernet.
struct ConvCost {
  bool depthwise = false;
  int64_t kh = 1, kw = 1;
  int64_t in_h = 1, in_w = 1;
  int64_t out_h = 1, out_w = 1;
  int64_t in_ch_max = 0, out_ch_max = 0;
  MaskFromLogits* in_dec = nullptr;   // null = fixed at in_ch_max
  MaskFromLogits* out_dec = nullptr;  // null = fixed at out_ch_max
  BranchMix* gate = nullptr;  // block-skip decision; branch 0 = layer present
  int bits = 8;

  double expected_in() const;
  double expected_out() const;
  double gate_probability() const;  // P(layer present)
  double expected_macs() const;
  double expected_params() const;       // weights only (bias excluded)
  double expected_working_memory() const;  // bytes: inputs + outputs (Eq. 3)
  // Smooth per-family throughput used by the differentiable direct-latency
  // constraint (no measurement wobble / alignment effects: those are not
  // differentiable and average out per Fig. 4).
  double smooth_mops(const mcu::Device& dev) const;
};

class Supernet {
 public:
  Supernet() : ctx_(std::make_unique<SearchContext>()) {}
  Supernet(Supernet&&) = default;
  Supernet& operator=(Supernet&&) = default;

  SearchContext& ctx() { return *ctx_; }
  nn::Graph graph;
  std::vector<MaskFromLogits*> width_decisions;  // owned by graph
  std::vector<BranchMix*> skip_decisions;        // owned by graph
  std::vector<ConvCost> conv_costs;
  Shape input_shape;
  int num_classes = 0;

 private:
  std::unique_ptr<SearchContext> ctx_;  // stable address for graph nodes
};

// Differentiable cost snapshot under the decision weights stored by the most
// recent forward pass.
struct CostBreakdown {
  double expected_params = 0.0;       // scalar weight count
  double expected_flash_bytes = 0.0;  // params*bytes + bias/graph-def estimate
  double expected_ops = 0.0;          // 1 MAC = 2 ops
  double peak_working_memory = 0.0;   // max over nodes of Eq. 3, bytes
  int peak_conv_index = -1;           // which cost entry attains the max
  // Filled when a latency device is supplied: differentiable end-to-end
  // latency estimate (seconds) from the smooth throughput model.
  double expected_latency_s = 0.0;
};
CostBreakdown evaluate_cost(const Supernet& net,
                            const mcu::Device* latency_device = nullptr);

// Accumulates d(penalty)/d(logits) for linear penalty coefficients on each
// cost term: dP/d(flash_bytes), dP/d(ops), dP/d(peak_wm) and, when a device
// is given, dP/d(latency_s). Uses the same decision weights as the last
// forward.
void accumulate_cost_gradients(Supernet& net, double d_flash, double d_ops,
                               double d_wm, double d_latency = 0.0,
                               const mcu::Device* latency_device = nullptr);

// --- Search spaces ----------------------------------------------------------

struct DsCnnSearchSpace {
  Shape input{49, 10, 1};
  int num_classes = 12;
  int64_t stem_max = 276;
  int64_t stem_kh = 10, stem_kw = 4, stem_stride = 2;
  struct Block {
    int64_t max_channels = 276;
    int64_t stride = 1;
    bool searchable_skip = true;  // paper: parallel skip to choose depth
  };
  std::vector<Block> blocks;
  // Width options as fractions of max (paper: 10%..100% in 10% steps);
  // realized widths are rounded to multiples of 4 (§5.2.2).
  std::vector<double> width_fracs{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};
};

Supernet build_ds_cnn_supernet(const DsCnnSearchSpace& space,
                               const models::BuildOptions& opt);

struct MbV2SearchSpace {
  Shape input{50, 50, 1};
  int num_classes = 2;
  int64_t stem_max = 32;
  int64_t stem_stride = 2;
  struct Block {
    int64_t expansion_max = 0;
    int64_t out_max = 0;
    int64_t stride = 1;
  };
  std::vector<Block> blocks;
  int64_t head_max = 0;  // 0 = no head conv
  std::vector<double> width_fracs{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};
};

// The paper's VWW search space: MobileNetV2 with searchable widths on the
// expansion and projection convs of each IBN plus the stem/head convs.
MbV2SearchSpace mbv2_search_space(double width_mult, Shape input, int num_classes);

Supernet build_mbv2_supernet(const MbV2SearchSpace& space,
                             const models::BuildOptions& opt);

// --- Extraction ---------------------------------------------------------------

// Reads argmax decisions into a concrete (deployable) model configuration.
models::DsCnnConfig extract_ds_cnn(const Supernet& net, const DsCnnSearchSpace& space);
models::MobileNetV2Config extract_mbv2(const Supernet& net, const MbV2SearchSpace& space);

// Width options for a given max channel count: fractions rounded to
// multiples of 4, deduplicated, ascending.
std::vector<int64_t> width_options(int64_t max_channels,
                                   std::span<const double> fracs);

}  // namespace mn::core
