#include "core/dnas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mcu/perf_model.hpp"
#include "nn/checkpoint.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/snapshot.hpp"

namespace mn::core {

namespace {

// Complete search state at an epoch boundary: supernet weights + arch logits
// (the checkpoint image covers both, plus BN stats), both optimizers'
// moments, both RNG streams, and the schedule/recovery position. Used in
// memory for divergence rollback and on disk as the crash journal.
struct DnasSnapshot {
  int next_epoch = 0;
  int64_t step = 0;
  double lr_scale = 1.0;
  int recovery_count = 0;
  double last_acc = 0.0, last_penalty = 0.0, last_loss = 0.0;
  CostBreakdown cost;
  RngState rng;        // shuffle/batch stream
  RngState gumbel_rng; // SearchContext decision-noise stream
  std::vector<int64_t> order;  // cumulative shuffle permutation
  std::vector<uint8_t> ckpt;
  std::vector<uint8_t> w_opt_state;
  std::vector<uint8_t> a_opt_state;
};

DnasSnapshot capture(Supernet& net, const nn::Optimizer& w_opt,
                     const nn::Optimizer& a_opt,
                     std::span<nn::Param* const> weight_params,
                     std::span<nn::Param* const> arch_params, const Rng& rng,
                     const std::vector<int64_t>& order, int next_epoch,
                     int64_t step, double lr_scale, int recovery_count,
                     const DnasResult& so_far) {
  DnasSnapshot s;
  s.next_epoch = next_epoch;
  s.step = step;
  s.lr_scale = lr_scale;
  s.recovery_count = recovery_count;
  s.last_acc = so_far.final_train_accuracy;
  s.last_penalty = so_far.final_penalty;
  s.last_loss = so_far.final_loss;
  s.cost = so_far.final_cost;
  s.rng = rng.save_state();
  s.gumbel_rng = net.ctx().rng.save_state();
  s.order = order;
  s.ckpt = nn::save_checkpoint(net.graph);
  nn::ByteWriter ww, wa;
  w_opt.save_state(weight_params, ww);
  a_opt.save_state(arch_params, wa);
  s.w_opt_state = ww.take();
  s.a_opt_state = wa.take();
  return s;
}

void restore(const DnasSnapshot& s, Supernet& net, nn::Optimizer& w_opt,
             nn::Optimizer& a_opt, std::span<nn::Param* const> weight_params,
             std::span<nn::Param* const> arch_params, Rng& rng,
             const data::Dataset& train, data::Dataset& ds,
             std::vector<int64_t>& order) {
  nn::load_checkpoint(net.graph, s.ckpt);
  nn::ByteReader rw(s.w_opt_state), ra(s.a_opt_state);
  w_opt.load_state(weight_params, rw);
  a_opt.load_state(arch_params, ra);
  if (!rw.ok()) rt::throw_rt_error(rw.error());
  if (!ra.ok()) rt::throw_rt_error(ra.error());
  rng.restore_state(s.rng);
  net.ctx().rng.restore_state(s.gumbel_rng);
  // Epoch shuffles compose, so the example permutation is part of the state.
  order = s.order;
  for (size_t i = 0; i < order.size(); ++i)
    ds.examples[i] = train.examples[static_cast<size_t>(order[i])];
}

void put_order(nn::ByteWriter& w, const std::vector<int64_t>& order) {
  w.u32(static_cast<uint32_t>(order.size()));
  for (int64_t idx : order) w.u32(static_cast<uint32_t>(idx));
}

std::vector<int64_t> get_order(nn::ByteReader& r, int64_t expected_size) {
  const uint32_t n = r.u32();
  if (!r.ok()) return {};
  if (n != static_cast<uint64_t>(expected_size)) {
    r.fail(rt::ErrorCode::kGraphInvalid,
           "journal: dataset size mismatch (journal has " + std::to_string(n) +
               " examples, caller has " + std::to_string(expected_size) + ")");
    return {};
  }
  std::vector<int64_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(r.u32());
  return order;
}

rt::Expected<uint32_t> write_dnas_journal(const std::string& path,
                                          const DnasConfig& cfg,
                                          const DnasSnapshot& s) {
  nn::ByteWriter w;
  w.u32(nn::kJournalMagic);
  w.u32(static_cast<uint32_t>(nn::JournalKind::kDnas));
  // Config guard: a journal only resumes into the search that wrote it.
  w.u32(static_cast<uint32_t>(cfg.epochs));
  w.u64(static_cast<uint64_t>(cfg.batch_size));
  w.u64(cfg.seed);
  w.u32(static_cast<uint32_t>(cfg.warmup_epochs));
  w.u32(static_cast<uint32_t>(s.next_epoch));
  w.u64(static_cast<uint64_t>(s.step));
  w.f64(s.lr_scale);
  w.u32(static_cast<uint32_t>(s.recovery_count));
  w.f64(s.last_acc);
  w.f64(s.last_penalty);
  w.f64(s.last_loss);
  w.f64(s.cost.expected_params);
  w.f64(s.cost.expected_flash_bytes);
  w.f64(s.cost.expected_ops);
  w.f64(s.cost.peak_working_memory);
  w.f64(s.cost.expected_latency_s);
  w.u32(static_cast<uint32_t>(s.cost.peak_conv_index));
  w.rng(s.rng);
  w.rng(s.gumbel_rng);
  put_order(w, s.order);
  w.blob(s.ckpt);
  w.blob(s.w_opt_state);
  w.blob(s.a_opt_state);
  w.seal();
  return nn::write_file_atomic(path, w.bytes());
}

rt::Expected<DnasSnapshot> read_dnas_journal(const std::string& path,
                                             const DnasConfig& cfg,
                                             int64_t dataset_size) {
  auto bytes = nn::read_file_bytes(path);
  if (!bytes.ok()) return bytes.error();
  nn::ByteReader r(bytes.value());
  if (r.unseal() != rt::ErrorCode::kOk) return r.error();
  if (r.u32() != nn::kJournalMagic)
    return rt::RtError{rt::ErrorCode::kBadMagic,
                       "journal: not an MNJ1 journal: " + path};
  if (r.u32() != static_cast<uint32_t>(nn::JournalKind::kDnas))
    return rt::RtError{rt::ErrorCode::kGraphInvalid,
                       "journal: not a DNAS journal: " + path};
  const uint32_t epochs = r.u32();
  const uint64_t batch = r.u64();
  const uint64_t seed = r.u64();
  const uint32_t warmup = r.u32();
  if (r.ok() && (epochs != static_cast<uint32_t>(cfg.epochs) ||
                 batch != static_cast<uint64_t>(cfg.batch_size) ||
                 seed != cfg.seed ||
                 warmup != static_cast<uint32_t>(cfg.warmup_epochs)))
    return rt::RtError{rt::ErrorCode::kGraphInvalid,
                       "journal: written under a different DNAS config"};
  DnasSnapshot s;
  s.next_epoch = static_cast<int>(r.u32());
  s.step = static_cast<int64_t>(r.u64());
  s.lr_scale = r.f64();
  s.recovery_count = static_cast<int>(r.u32());
  s.last_acc = r.f64();
  s.last_penalty = r.f64();
  s.last_loss = r.f64();
  s.cost.expected_params = r.f64();
  s.cost.expected_flash_bytes = r.f64();
  s.cost.expected_ops = r.f64();
  s.cost.peak_working_memory = r.f64();
  s.cost.expected_latency_s = r.f64();
  s.cost.peak_conv_index = static_cast<int>(r.u32());
  s.rng = r.rng();
  s.gumbel_rng = r.rng();
  s.order = get_order(r, dataset_size);
  s.ckpt = r.blob();
  s.w_opt_state = r.blob();
  s.a_opt_state = r.blob();
  if (!r.ok()) return r.error();
  if (r.remaining() != 0)
    return rt::RtError{rt::ErrorCode::kTrailingBytes,
                       "journal: trailing bytes after the optimizer state"};
  return s;
}

}  // namespace

DnasConstraints constraints_for_device(const mcu::Device& dev,
                                       double latency_target_s) {
  DnasConstraints c;
  c.flash_budget_bytes = mcu::model_flash_budget(dev);
  // Working memory (Eq. 3) must fit the arena share of SRAM; reserve an
  // estimated persistent-buffer share on top of the fixed runtime overhead.
  c.sram_budget_bytes = mcu::model_sram_budget(dev) - 24 * 1024;
  if (latency_target_s > 0.0) {
    // ops <= latency * throughput (conv-dominated backbones).
    c.ops_budget = static_cast<int64_t>(latency_target_s * dev.conv_mops * 1e6);
  }
  return c;
}

double constraint_penalty(const CostBreakdown& cost, const DnasConstraints& cn,
                          double* d_flash, double* d_ops, double* d_wm,
                          double* d_latency) {
  double pen = 0.0;
  *d_flash = *d_ops = *d_wm = 0.0;
  if (d_latency != nullptr) *d_latency = 0.0;
  auto hinge = [&pen](double u, double budget, double lambda, double* dc) {
    if (budget <= 0) return;
    const double over = u / budget - 1.0;
    if (over > 0) {
      pen += lambda * over * over;
      *dc = lambda * 2.0 * over / budget;
    }
  };
  hinge(cost.expected_flash_bytes, static_cast<double>(cn.flash_budget_bytes),
        cn.lambda_flash, d_flash);
  hinge(cost.expected_ops, static_cast<double>(cn.ops_budget), cn.lambda_ops,
        d_ops);
  hinge(cost.peak_working_memory, static_cast<double>(cn.sram_budget_bytes),
        cn.lambda_sram, d_wm);
  if (d_latency != nullptr && cn.latency_device != nullptr)
    hinge(cost.expected_latency_s, cn.latency_budget_s, cn.lambda_latency,
          d_latency);
  return pen;
}

DnasResult run_dnas(Supernet& net, const data::Dataset& train,
                    const DnasConfig& cfg) {
  Rng rng(cfg.seed);
  net.ctx().rng = rng.fork(0x6A5);
  data::Dataset ds = train;

  auto all_params = net.graph.params();
  std::vector<nn::Param*> weight_params, arch_params;
  for (nn::Param* p : all_params) {
    if (p->group == nn::ParamGroup::kArch)
      arch_params.push_back(p);
    else
      weight_params.push_back(p);
  }

  const int64_t steps_per_epoch =
      std::max<int64_t>(1, (ds.size() + cfg.batch_size - 1) / cfg.batch_size);
  nn::CosineSchedule w_sched(cfg.lr_w_start, cfg.lr_w_end,
                             steps_per_epoch * cfg.epochs);
  nn::SgdMomentum w_opt(0.9, cfg.weight_decay);
  nn::Adam a_opt;

  DnasResult result;
  int64_t step = 0;
  int epoch = 0;
  double lr_scale = 1.0;
  int recovery_count = 0;
  const bool sentinel = cfg.max_recoveries > 0;
  int64_t steps_this_call = 0;
  std::vector<int64_t> order(static_cast<size_t>(ds.size()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  if (!cfg.resume_from.empty()) {
    DnasSnapshot j =
        read_dnas_journal(cfg.resume_from, cfg, ds.size()).take_or_throw();
    restore(j, net, w_opt, a_opt, weight_params, arch_params, rng, train, ds,
            order);
    epoch = j.next_epoch;
    step = j.step;
    lr_scale = j.lr_scale;
    recovery_count = j.recovery_count;
    result.final_train_accuracy = j.last_acc;
    result.final_penalty = j.last_penalty;
    result.final_loss = j.last_loss;
    result.final_cost = j.cost;
    result.epochs_completed = j.next_epoch;
  }

  while (epoch < cfg.epochs) {
    // Observation only: never touches RNG, journal, or supernet state.
    obs::SpanScope epoch_span("dnas_epoch", obs::Cat::kSearch, "epoch", epoch,
                              "step", step);
    // Epoch-boundary snapshot: rollback target for the divergence sentinel
    // and the payload of the crash journal. Taken before the shuffle and
    // before any Gumbel draw, so a restore replays the epoch identically.
    DnasSnapshot boundary =
        capture(net, w_opt, a_opt, weight_params, arch_params, rng, order,
                epoch, step, lr_scale, recovery_count, result);
    if (!cfg.journal_path.empty() && epoch % std::max(1, cfg.journal_every) == 0)
      write_dnas_journal(cfg.journal_path, cfg, boundary).take_or_throw();

    // Anneal the Gumbel-softmax temperature over the search.
    const double frac = cfg.epochs > 1
                            ? static_cast<double>(epoch) / (cfg.epochs - 1)
                            : 1.0;
    net.ctx().temperature =
        cfg.temp_start * std::pow(cfg.temp_end / cfg.temp_start, frac);
    const bool arch_active = epoch >= cfg.warmup_epochs;

    data::shuffle_tracked(ds, rng, order);
    double loss_sum = 0.0, acc_sum = 0.0, pen_sum = 0.0;
    int64_t batches = 0;
    bool diverged = false;
    reliability::RecoveryEvent event;
    for (int64_t first = 0; first < ds.size(); first += cfg.batch_size) {
      const data::Batch batch = data::make_batch(ds, first, cfg.batch_size);
      net.graph.zero_grads();
      const TensorF logits = net.graph.forward(batch.inputs, /*training=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
      net.graph.backward(lr.grad);

      const CostBreakdown cost =
          evaluate_cost(net, cfg.constraints.latency_device);
      double d_flash, d_ops, d_wm, d_lat;
      const double pen = constraint_penalty(cost, cfg.constraints, &d_flash,
                                            &d_ops, &d_wm, &d_lat);
      if (cfg.grad_fault) cfg.grad_fault(epoch, step, weight_params, arch_params);

      if (sentinel) {
        if (!std::isfinite(lr.loss) || !std::isfinite(pen)) {
          event = {epoch, step, reliability::RecoveryKind::kNonFiniteLoss,
                   lr_scale, std::isfinite(lr.loss) ? "penalty" : "loss"};
          diverged = true;
          break;
        }
        for (nn::Param* p : weight_params) {
          if (!reliability::all_finite(
                  {p->grad.data(), static_cast<size_t>(p->grad.size())})) {
            event = {epoch, step, reliability::RecoveryKind::kNonFiniteGradient,
                     lr_scale, p->name};
            diverged = true;
            break;
          }
        }
        for (nn::Param* p : arch_params) {
          if (diverged) break;
          if (!reliability::all_finite(
                  {p->grad.data(), static_cast<size_t>(p->grad.size())})) {
            event = {epoch, step, reliability::RecoveryKind::kNonFiniteGradient,
                     lr_scale, p->name};
            diverged = true;
          }
        }
        if (diverged) break;
      }

      if (arch_active) {
        accumulate_cost_gradients(net, d_flash, d_ops, d_wm, d_lat,
                                  cfg.constraints.latency_device);
        a_opt.step(arch_params, cfg.lr_arch * lr_scale);
      }
      w_opt.step(weight_params, w_sched.lr(step) * lr_scale);
      ++step;

      if (sentinel) {
        for (nn::Param* p : arch_params) {
          if (!reliability::all_finite(
                  {p->value.data(), static_cast<size_t>(p->value.size())})) {
            event = {epoch, step,
                     reliability::RecoveryKind::kNonFiniteArchLogit, lr_scale,
                     p->name};
            diverged = true;
            break;
          }
        }
        for (nn::Param* p : weight_params) {
          if (diverged) break;
          if (!reliability::all_finite(
                  {p->value.data(), static_cast<size_t>(p->value.size())})) {
            event = {epoch, step, reliability::RecoveryKind::kNonFiniteParam,
                     lr_scale, p->name};
            diverged = true;
          }
        }
        if (diverged) break;
      }

      if (++steps_this_call == cfg.halt_after_steps) {
        // Simulated power loss mid-epoch: the journal on disk still holds
        // the last epoch boundary, exactly as after a SIGKILL.
        result.interrupted = true;
        return result;
      }

      loss_sum += lr.loss + pen;
      pen_sum += pen;
      acc_sum += nn::accuracy(logits, batch.labels);
      ++batches;
      result.final_cost = cost;
      result.final_penalty = pen;
    }

    if (diverged) {
      ++recovery_count;
      if (recovery_count > cfg.max_recoveries)
        throw std::runtime_error(
            std::string("run_dnas: divergence (") +
            reliability::recovery_kind_name(event.kind) + " in '" +
            event.detail + "') persisted after " +
            std::to_string(cfg.max_recoveries) + " recoveries");
      restore(boundary, net, w_opt, a_opt, weight_params, arch_params, rng,
              train, ds, order);
      step = boundary.step;
      result.final_cost = boundary.cost;
      result.final_penalty = boundary.last_penalty;
      lr_scale *= cfg.lr_backoff;
      event.lr_scale_after = lr_scale;
      result.recoveries.push_back(event);
      if (cfg.on_recovery) cfg.on_recovery(event);
      continue;  // re-run the same epoch with the smaller LR
    }

    result.final_train_accuracy = acc_sum / static_cast<double>(batches);
    result.final_loss = loss_sum / static_cast<double>(batches);
    result.epochs_completed = epoch + 1;
    obs::counter_add(obs::Counter::kDnasEpochs, 1);
    if (cfg.on_epoch) {
      DnasEpochInfo info;
      info.epoch = epoch;
      info.step = step;
      info.loss = result.final_loss;
      info.accuracy = result.final_train_accuracy;
      info.penalty = pen_sum / static_cast<double>(batches);
      info.temperature = net.ctx().temperature;
      info.arch_active = arch_active;
      info.cost = result.final_cost;
      info.rng_fingerprint = rng.fingerprint();
      info.gumbel_rng_fingerprint = net.ctx().rng.fingerprint();
      info.recoveries = recovery_count;
      cfg.on_epoch(info);
    }
    ++epoch;
  }

  if (!cfg.journal_path.empty()) {
    // Completion journal: resuming a finished search returns its recorded
    // result without re-running any epoch.
    const DnasSnapshot done =
        capture(net, w_opt, a_opt, weight_params, arch_params, rng, order,
                cfg.epochs, step, lr_scale, recovery_count, result);
    write_dnas_journal(cfg.journal_path, cfg, done).take_or_throw();
  }
  return result;
}

// --- Candidate-cost evaluation ---------------------------------------------

namespace {

// Index of a decision node inside the supernet's registries (the ConvCost
// entries hold raw pointers; ArchSample holds indices).
template <typename T>
size_t decision_index(const std::vector<T*>& all, const T* d) {
  for (size_t i = 0; i < all.size(); ++i)
    if (all[i] == d) return i;
  throw std::logic_error("candidate_cost: decision not registered");
}

}  // namespace

CostBreakdown candidate_cost(const Supernet& net, const ArchSample& arch,
                             const mcu::Device* latency_device) {
  if (arch.width_choices.size() != net.width_decisions.size() ||
      arch.skip_choices.size() != net.skip_decisions.size())
    throw std::invalid_argument("candidate_cost: arity mismatch with supernet");
  const auto width_of = [&](const MaskFromLogits* d, int64_t fixed) -> int64_t {
    if (d == nullptr) return fixed;
    const size_t i = decision_index(net.width_decisions, d);
    const int k = arch.width_choices[i];
    if (k < 0 || k >= d->num_options())
      throw std::invalid_argument("candidate_cost: width choice out of range");
    return d->widths()[static_cast<size_t>(k)];
  };

  CostBreakdown c;
  std::vector<mcu::LayerDesc> layers;
  for (size_t i = 0; i < net.conv_costs.size(); ++i) {
    const ConvCost& cc = net.conv_costs[i];
    const int64_t in_ch = width_of(cc.in_dec, cc.in_ch_max);
    const int64_t out_ch = width_of(cc.out_dec, cc.out_ch_max);
    bool present = true;
    if (cc.gate != nullptr) {
      const size_t gi = decision_index(net.skip_decisions, cc.gate);
      const int k = arch.skip_choices[gi];
      if (k < 0 || k >= cc.gate->num_options())
        throw std::invalid_argument("candidate_cost: skip choice out of range");
      present = k == 0;  // branch 0 = layer present
    }
    const double spatial = static_cast<double>(cc.out_h * cc.out_w);
    const double kk = static_cast<double>(cc.kh * cc.kw);
    const double macs =
        present ? (cc.depthwise
                       ? spatial * kk * static_cast<double>(in_ch)
                       : spatial * kk * static_cast<double>(in_ch * out_ch))
                : 0.0;
    const double params =
        present ? (cc.depthwise ? kk * static_cast<double>(in_ch)
                                : kk * static_cast<double>(in_ch * out_ch))
                : 0.0;
    c.expected_params += params;
    c.expected_ops += 2.0 * macs;
    // Working memory mirrors expected_working_memory: inputs + outputs of
    // the layer buffers (Eq. 3), independent of the skip gate.
    const double bytes_per_act = cc.bits == 4 ? 0.5 : 1.0;
    const double wm = (static_cast<double>(cc.in_h * cc.in_w * in_ch) +
                       static_cast<double>(cc.out_h * cc.out_w * out_ch)) *
                      bytes_per_act;
    if (wm > c.peak_working_memory) {
      c.peak_working_memory = wm;
      c.peak_conv_index = static_cast<int>(i);
    }
    if (latency_device != nullptr && present) {
      mcu::LayerDesc l;
      if (cc.depthwise)
        l.kind = mcu::LayerKind::kDepthwiseConv2D;
      else if (cc.in_h == 1 && cc.in_w == 1 && cc.kh * cc.kw == 1)
        l.kind = mcu::LayerKind::kFullyConnected;
      else
        l.kind = mcu::LayerKind::kConv2D;
      l.ops = static_cast<int64_t>(2.0 * macs);
      l.in_ch = in_ch;
      l.out_ch = out_ch;
      l.kh = cc.kh;
      l.kw = cc.kw;
      l.out_h = cc.out_h;
      l.out_w = cc.out_w;
      l.bits = cc.bits;
      layers.push_back(l);
    }
  }
  double bytes_per_weight = 1.0;
  if (!net.conv_costs.empty() && net.conv_costs.front().bits == 4)
    bytes_per_weight = 0.5;
  c.expected_flash_bytes =
      c.expected_params * bytes_per_weight +
      static_cast<double>(net.conv_costs.size()) * 640.0 + 2048.0;
  if (latency_device != nullptr)
    c.expected_latency_s = mcu::model_latency_s(*latency_device, layers);
  return c;
}

std::vector<CostBreakdown> evaluate_candidate_costs(
    const Supernet& net, std::span<const ArchSample> candidates,
    const mcu::Device* latency_device) {
  std::vector<CostBreakdown> out(candidates.size());
  // Indexed result slots: candidate i lands in out[i] no matter which worker
  // computes it, so the fan-out is deterministic by construction.
  parallel::parallel_for(
      0, static_cast<int64_t>(candidates.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
          out[static_cast<size_t>(i)] = candidate_cost(
              net, candidates[static_cast<size_t>(i)], latency_device);
      });
  return out;
}

}  // namespace mn::core
