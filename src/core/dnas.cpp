#include "core/dnas.hpp"

#include <algorithm>
#include <cmath>

#include "mcu/perf_model.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace mn::core {

DnasConstraints constraints_for_device(const mcu::Device& dev,
                                       double latency_target_s) {
  DnasConstraints c;
  c.flash_budget_bytes = mcu::model_flash_budget(dev);
  // Working memory (Eq. 3) must fit the arena share of SRAM; reserve an
  // estimated persistent-buffer share on top of the fixed runtime overhead.
  c.sram_budget_bytes = mcu::model_sram_budget(dev) - 24 * 1024;
  if (latency_target_s > 0.0) {
    // ops <= latency * throughput (conv-dominated backbones).
    c.ops_budget = static_cast<int64_t>(latency_target_s * dev.conv_mops * 1e6);
  }
  return c;
}

double constraint_penalty(const CostBreakdown& cost, const DnasConstraints& cn,
                          double* d_flash, double* d_ops, double* d_wm,
                          double* d_latency) {
  double pen = 0.0;
  *d_flash = *d_ops = *d_wm = 0.0;
  if (d_latency != nullptr) *d_latency = 0.0;
  auto hinge = [&pen](double u, double budget, double lambda, double* dc) {
    if (budget <= 0) return;
    const double over = u / budget - 1.0;
    if (over > 0) {
      pen += lambda * over * over;
      *dc = lambda * 2.0 * over / budget;
    }
  };
  hinge(cost.expected_flash_bytes, static_cast<double>(cn.flash_budget_bytes),
        cn.lambda_flash, d_flash);
  hinge(cost.expected_ops, static_cast<double>(cn.ops_budget), cn.lambda_ops,
        d_ops);
  hinge(cost.peak_working_memory, static_cast<double>(cn.sram_budget_bytes),
        cn.lambda_sram, d_wm);
  if (d_latency != nullptr && cn.latency_device != nullptr)
    hinge(cost.expected_latency_s, cn.latency_budget_s, cn.lambda_latency,
          d_latency);
  return pen;
}

DnasResult run_dnas(Supernet& net, const data::Dataset& train,
                    const DnasConfig& cfg) {
  Rng rng(cfg.seed);
  net.ctx().rng = rng.fork(0x6A5);
  data::Dataset ds = train;

  auto all_params = net.graph.params();
  std::vector<nn::Param*> weight_params, arch_params;
  for (nn::Param* p : all_params) {
    if (p->group == nn::ParamGroup::kArch)
      arch_params.push_back(p);
    else
      weight_params.push_back(p);
  }

  const int64_t steps_per_epoch =
      std::max<int64_t>(1, (ds.size() + cfg.batch_size - 1) / cfg.batch_size);
  nn::CosineSchedule w_sched(cfg.lr_w_start, cfg.lr_w_end,
                             steps_per_epoch * cfg.epochs);
  nn::SgdMomentum w_opt(0.9, cfg.weight_decay);
  nn::Adam a_opt;

  DnasResult result;
  int64_t step = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Anneal the Gumbel-softmax temperature over the search.
    const double frac = cfg.epochs > 1
                            ? static_cast<double>(epoch) / (cfg.epochs - 1)
                            : 1.0;
    net.ctx().temperature =
        cfg.temp_start * std::pow(cfg.temp_end / cfg.temp_start, frac);
    const bool arch_active = epoch >= cfg.warmup_epochs;

    data::shuffle(ds, rng);
    double loss_sum = 0.0, acc_sum = 0.0, pen_sum = 0.0;
    int64_t batches = 0;
    for (int64_t first = 0; first < ds.size(); first += cfg.batch_size) {
      const data::Batch batch = data::make_batch(ds, first, cfg.batch_size);
      net.graph.zero_grads();
      const TensorF logits = net.graph.forward(batch.inputs, /*training=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
      net.graph.backward(lr.grad);

      const CostBreakdown cost =
          evaluate_cost(net, cfg.constraints.latency_device);
      double d_flash, d_ops, d_wm, d_lat;
      const double pen = constraint_penalty(cost, cfg.constraints, &d_flash,
                                            &d_ops, &d_wm, &d_lat);
      if (arch_active) {
        accumulate_cost_gradients(net, d_flash, d_ops, d_wm, d_lat,
                                  cfg.constraints.latency_device);
        a_opt.step(arch_params, cfg.lr_arch);
      }
      w_opt.step(weight_params, w_sched.lr(step));
      ++step;
      loss_sum += lr.loss + pen;
      pen_sum += pen;
      acc_sum += nn::accuracy(logits, batch.labels);
      ++batches;
      result.final_cost = cost;
      result.final_penalty = pen;
    }
    result.final_train_accuracy = acc_sum / static_cast<double>(batches);
    if (cfg.on_epoch)
      cfg.on_epoch(epoch, loss_sum / static_cast<double>(batches),
                   result.final_train_accuracy,
                   pen_sum / static_cast<double>(batches), result.final_cost);
  }
  return result;
}

}  // namespace mn::core
