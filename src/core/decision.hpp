// DNAS decision nodes (§5.1, Eq. 1): differentiable selections among K
// options, relaxed with a Gumbel-softmax over architecture logits.
//
//   y = sum_k z_k f_k(x),   z ~ one-hot  -->  y = sum_k a_k f_k(x),
//   a = softmax((logits + gumbel_noise) / temperature).
//
// Two concrete nodes:
//  - MaskFromLogits: emits a per-channel mask m = sum_k a_k M_k where M_k
//    keeps the first width_k channels (FBNetV2-style width search). Feeds a
//    ChannelMul node.
//  - BranchMix: y = a_0 x_0 + ... + a_{K-1} x_{K-1} over K same-shaped
//    branches (layer-skip decisions: block vs. shortcut).
#pragma once

#include <memory>
#include <vector>

#include "nn/node.hpp"

namespace mn::core {

// Shared annealing/noise state for all decision nodes of one search.
struct SearchContext {
  double temperature = 5.0;
  bool gumbel_enabled = true;
  bool arch_frozen = false;  // freeze to argmax (used for extraction eval)
  Rng rng{0xD1CE};
};

// Base for nodes parameterized by architecture logits.
class DecisionNode : public nn::Node {
 public:
  DecisionNode(std::string name, int num_options, SearchContext* ctx);

  int num_options() const { return static_cast<int>(logits_.value.size()); }
  nn::Param& logits() { return logits_; }
  std::vector<nn::Param*> params() override { return {&logits_}; }

  // Softmax weights `a` from the most recent forward.
  const std::vector<double>& weights() const { return weights_; }

  // argmax over logits (the hard selection used at extraction time).
  int selected_option() const;

  // Adds dLoss/d(logits) for a given dLoss/d(a), through the softmax
  // Jacobian at the stored weights (used by the analytic constraint
  // penalties, which bypass the activation graph).
  void accumulate_arch_grad(std::span<const double> dL_da);

  // Recomputes the stored weights outside a graph forward (used by the
  // black-box search helpers to snapshot costs of a frozen architecture).
  void refresh(bool training = false) { refresh_weights(training); }

 protected:
  // Recomputes `weights_` (Gumbel-perturbed softmax, or hard one-hot when
  // the context is frozen). Called at the start of each forward.
  void refresh_weights(bool training);

  SearchContext* ctx_;
  nn::Param logits_;
  std::vector<double> weights_;
};

class MaskFromLogits final : public DecisionNode {
 public:
  // `widths[k]` = number of leading channels kept by option k; channels =
  // mask length (usually widths.back()).
  MaskFromLogits(std::string name, std::vector<int64_t> widths, int64_t channels,
                 SearchContext* ctx);

  TensorF forward(const std::vector<const TensorF*>& in, bool training) override;
  std::vector<TensorF> backward(const std::vector<const TensorF*>& in,
                                const TensorF& grad_out) override;

  const std::vector<int64_t>& widths() const { return widths_; }
  int64_t channels() const { return channels_; }

  // E[width] = sum_k a_k width_k under the current weights.
  double expected_width() const;
  int64_t selected_width() const { return widths_[static_cast<size_t>(selected_option())]; }

 private:
  std::vector<int64_t> widths_;
  int64_t channels_;
};

class BranchMix final : public DecisionNode {
 public:
  BranchMix(std::string name, int num_branches, SearchContext* ctx);

  TensorF forward(const std::vector<const TensorF*>& in, bool training) override;
  std::vector<TensorF> backward(const std::vector<const TensorF*>& in,
                                const TensorF& grad_out) override;

  // P(branch b is selected) under the current relaxation.
  double branch_probability(int b) const { return weights_[static_cast<size_t>(b)]; }
};

}  // namespace mn::core
