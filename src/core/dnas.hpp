// DNAS search loop (§5): trains supernet weights and architecture logits
// jointly by gradient descent, with differentiable penalties that push the
// expected architecture inside the MCU eFlash / SRAM / op-count budgets.
#pragma once

#include <functional>

#include "core/supernet.hpp"
#include "datasets/dataset.hpp"
#include "mcu/device.hpp"

namespace mn::core {

struct DnasConstraints {
  // 0 disables a constraint.
  int64_t flash_budget_bytes = 0;  // model weights + graph def (eFlash)
  int64_t sram_budget_bytes = 0;   // peak working memory (Eq. 3)
  int64_t ops_budget = 0;          // op-count proxy for the latency target
  double lambda_flash = 4.0;
  double lambda_sram = 4.0;
  double lambda_ops = 4.0;
  // Direct-latency alternative to the op-count proxy: constrain the
  // differentiable end-to-end latency estimate on a concrete device.
  double latency_budget_s = 0.0;   // 0 disables
  double lambda_latency = 4.0;
  const mcu::Device* latency_device = nullptr;
};

// Budgets for targeting a device, mirroring §5.1.1: available memory minus
// expected TFLM overheads (and persistent-buffer headroom for SRAM).
DnasConstraints constraints_for_device(const mcu::Device& dev,
                                       double latency_target_s = 0.0);

struct DnasConfig {
  int epochs = 30;
  int64_t batch_size = 32;
  double lr_w_start = 0.05;
  double lr_w_end = 1e-4;
  double weight_decay = 1e-3;
  double lr_arch = 0.05;
  double temp_start = 5.0;
  double temp_end = 0.5;
  int warmup_epochs = 5;  // train weights only before arch updates begin
  uint64_t seed = 1;
  DnasConstraints constraints;
  std::function<void(int, double /*loss*/, double /*acc*/, double /*penalty*/,
                     const CostBreakdown&)>
      on_epoch;
};

struct DnasResult {
  CostBreakdown final_cost;
  double final_train_accuracy = 0.0;
  double final_penalty = 0.0;
};

// Penalty value and its derivative coefficients w.r.t. each cost term
// (normalized quadratic hinge: lambda * max(0, u/B - 1)^2).
double constraint_penalty(const CostBreakdown& cost, const DnasConstraints& cn,
                          double* d_flash, double* d_ops, double* d_wm,
                          double* d_latency = nullptr);

DnasResult run_dnas(Supernet& net, const data::Dataset& train,
                    const DnasConfig& cfg);

}  // namespace mn::core
