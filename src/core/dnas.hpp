// DNAS search loop (§5): trains supernet weights and architecture logits
// jointly by gradient descent, with differentiable penalties that push the
// expected architecture inside the MCU eFlash / SRAM / op-count budgets.
//
// Crash safety (PR 2): the search can journal its complete state — supernet
// weights, architecture logits, both optimizers' moments, both RNG streams,
// and the schedule position — to a CRC-sealed file at epoch boundaries, and
// resume from that journal bit-identically (the resumed run reaches exactly
// the architecture decision, cost breakdown, and accuracy of an
// uninterrupted run; bench_resume_equivalence proves it). A divergence
// sentinel guards the joint optimization the same way the Trainer's does,
// additionally watching the architecture logits.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/supernet.hpp"
#include "datasets/dataset.hpp"
#include "mcu/device.hpp"
#include "reliability/recovery.hpp"

namespace mn::core {

struct DnasConstraints {
  // 0 disables a constraint.
  int64_t flash_budget_bytes = 0;  // model weights + graph def (eFlash)
  int64_t sram_budget_bytes = 0;   // peak working memory (Eq. 3)
  int64_t ops_budget = 0;          // op-count proxy for the latency target
  double lambda_flash = 4.0;
  double lambda_sram = 4.0;
  double lambda_ops = 4.0;
  // Direct-latency alternative to the op-count proxy: constrain the
  // differentiable end-to-end latency estimate on a concrete device.
  double latency_budget_s = 0.0;   // 0 disables
  double lambda_latency = 4.0;
  const mcu::Device* latency_device = nullptr;
};

// Budgets for targeting a device, mirroring §5.1.1: available memory minus
// expected TFLM overheads (and persistent-buffer headroom for SRAM).
DnasConstraints constraints_for_device(const mcu::Device& dev,
                                       double latency_target_s = 0.0);

// Per-epoch progress report. All fields are deterministic functions of the
// search state (no wall clock), so two runs of the same seed — or a resumed
// run — produce identical sequences; the RNG fingerprints make drift between
// a resumed and an uninterrupted run visible at the first diverging epoch.
struct DnasEpochInfo {
  int epoch = 0;
  int64_t step = 0;          // global weight-optimizer steps completed
  double loss = 0.0;         // mean train loss incl. constraint penalty
  double accuracy = 0.0;     // mean train accuracy
  double penalty = 0.0;      // mean constraint penalty
  double temperature = 0.0;  // Gumbel-softmax temperature this epoch
  bool arch_active = false;  // past the weight-only warmup
  CostBreakdown cost;        // cost under the last batch's decision weights
  // SplitMix64 stream positions of the shuffle/mixup RNG and the
  // Gumbel-noise RNG after this epoch (wall-clock-free progress markers).
  uint64_t rng_fingerprint = 0;
  uint64_t gumbel_rng_fingerprint = 0;
  int recoveries = 0;        // divergence recoveries so far in this run
};

struct DnasConfig {
  int epochs = 30;
  int64_t batch_size = 32;
  double lr_w_start = 0.05;
  double lr_w_end = 1e-4;
  double weight_decay = 1e-3;
  double lr_arch = 0.05;
  double temp_start = 5.0;
  double temp_end = 0.5;
  int warmup_epochs = 5;  // train weights only before arch updates begin
  uint64_t seed = 1;
  DnasConstraints constraints;
  std::function<void(const DnasEpochInfo&)> on_epoch;

  // --- crash safety & divergence recovery (see nn::TrainConfig) ---
  std::string journal_path;  // empty disables journaling
  int journal_every = 1;
  std::string resume_from;   // journal to resume from (bit-identical)
  int max_recoveries = 0;    // 0 = sentinel off
  double lr_backoff = 0.5;
  std::function<void(const reliability::RecoveryEvent&)> on_recovery;
  int64_t halt_after_steps = -1;  // testing hook: simulated power loss
  // Fault hook called after backward with (epoch, step, weight params,
  // arch params) for reproducible gradient-poisoning campaigns.
  std::function<void(int, int64_t, std::span<nn::Param* const>,
                     std::span<nn::Param* const>)>
      grad_fault;
};

struct DnasResult {
  CostBreakdown final_cost;
  double final_train_accuracy = 0.0;
  double final_penalty = 0.0;
  double final_loss = 0.0;
  int epochs_completed = 0;
  bool interrupted = false;  // true iff halted by `halt_after_steps`
  std::vector<reliability::RecoveryEvent> recoveries;
};

// Penalty value and its derivative coefficients w.r.t. each cost term
// (normalized quadratic hinge: lambda * max(0, u/B - 1)^2).
double constraint_penalty(const CostBreakdown& cost, const DnasConstraints& cn,
                          double* d_flash, double* d_ops, double* d_wm,
                          double* d_latency = nullptr);

DnasResult run_dnas(Supernet& net, const data::Dataset& train,
                    const DnasConfig& cfg);

// --- Candidate-cost evaluation ---------------------------------------------

// A concrete selection: one option index per width decision and per skip
// decision of a supernet. Shared with the black-box baselines
// (core/blackbox.hpp).
struct ArchSample {
  std::vector<int> width_choices;
  std::vector<int> skip_choices;

  bool operator==(const ArchSample&) const = default;
};

// Discrete cost of one frozen candidate, computed WITHOUT mutating the
// supernet (unlike arch_cost, which freezes the decision logits first):
// concrete widths from the sample, skip gates 0/1, and — when a device is
// given — end-to-end latency from the mcu::PerfModel's per-layer throughput
// tables (layer_latency_s) rather than the smooth differentiable estimate.
CostBreakdown candidate_cost(const Supernet& net, const ArchSample& arch,
                             const mcu::Device* latency_device = nullptr);

// Fans candidate-cost evaluation out across the worker pool. Result slot i
// is candidate i's cost, so the output is identical at any thread count.
std::vector<CostBreakdown> evaluate_candidate_costs(
    const Supernet& net, std::span<const ArchSample> candidates,
    const mcu::Device* latency_device = nullptr);

}  // namespace mn::core
