#include "core/decision.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mn::core {

DecisionNode::DecisionNode(std::string name, int num_options, SearchContext* ctx)
    : nn::Node(std::move(name)),
      ctx_(ctx),
      logits_(this->name() + "/logits", Shape{num_options}, nn::ParamGroup::kArch),
      weights_(static_cast<size_t>(num_options), 1.0 / num_options) {
  if (num_options < 2) throw std::invalid_argument("DecisionNode: need >= 2 options");
  if (ctx == nullptr) throw std::invalid_argument("DecisionNode: null context");
  logits_.value.fill(0.f);
}

int DecisionNode::selected_option() const {
  int best = 0;
  for (int k = 1; k < num_options(); ++k)
    if (logits_.value[k] > logits_.value[best]) best = k;
  return best;
}

void DecisionNode::refresh_weights(bool training) {
  const int K = num_options();
  if (ctx_->arch_frozen) {
    std::fill(weights_.begin(), weights_.end(), 0.0);
    weights_[static_cast<size_t>(selected_option())] = 1.0;
    return;
  }
  const double tau = std::max(ctx_->temperature, 1e-3);
  std::vector<double> z(static_cast<size_t>(K));
  double mx = -1e300;
  for (int k = 0; k < K; ++k) {
    double v = logits_.value[k];
    if (training && ctx_->gumbel_enabled) v += ctx_->rng.gumbel();
    z[static_cast<size_t>(k)] = v / tau;
    mx = std::max(mx, z[static_cast<size_t>(k)]);
  }
  double sum = 0.0;
  for (int k = 0; k < K; ++k) {
    weights_[static_cast<size_t>(k)] = std::exp(z[static_cast<size_t>(k)] - mx);
    sum += weights_[static_cast<size_t>(k)];
  }
  for (int k = 0; k < K; ++k) weights_[static_cast<size_t>(k)] /= sum;
}

void DecisionNode::accumulate_arch_grad(std::span<const double> dL_da) {
  if (static_cast<int>(dL_da.size()) != num_options())
    throw std::invalid_argument("accumulate_arch_grad: size mismatch");
  if (ctx_->arch_frozen) return;
  const double tau = std::max(ctx_->temperature, 1e-3);
  double dot = 0.0;
  for (int k = 0; k < num_options(); ++k)
    dot += weights_[static_cast<size_t>(k)] * dL_da[static_cast<size_t>(k)];
  for (int k = 0; k < num_options(); ++k) {
    const double g =
        weights_[static_cast<size_t>(k)] * (dL_da[static_cast<size_t>(k)] - dot) / tau;
    logits_.grad[k] += static_cast<float>(g);
  }
}

// --------------------------------------------------------- MaskFromLogits --

MaskFromLogits::MaskFromLogits(std::string name, std::vector<int64_t> widths,
                               int64_t channels, SearchContext* ctx)
    : DecisionNode(std::move(name), static_cast<int>(widths.size()), ctx),
      widths_(std::move(widths)),
      channels_(channels) {
  for (int64_t w : widths_)
    if (w <= 0 || w > channels_)
      throw std::invalid_argument("MaskFromLogits: width out of range");
}

TensorF MaskFromLogits::forward(const std::vector<const TensorF*>&, bool training) {
  refresh_weights(training);
  TensorF mask(Shape{channels_}, 0.f);
  // m_c = sum over options keeping channel c of a_k.
  for (int k = 0; k < num_options(); ++k) {
    const float a = static_cast<float>(weights_[static_cast<size_t>(k)]);
    for (int64_t c = 0; c < widths_[static_cast<size_t>(k)]; ++c) mask[c] += a;
  }
  return mask;
}

std::vector<TensorF> MaskFromLogits::backward(const std::vector<const TensorF*>&,
                                              const TensorF& g) {
  // dL/da_k = sum_{c < width_k} dL/dm_c ; then through the softmax Jacobian.
  std::vector<double> dL_da(static_cast<size_t>(num_options()), 0.0);
  for (int k = 0; k < num_options(); ++k) {
    double acc = 0.0;
    for (int64_t c = 0; c < widths_[static_cast<size_t>(k)]; ++c) acc += g[c];
    dL_da[static_cast<size_t>(k)] = acc;
  }
  accumulate_arch_grad(dL_da);
  return {};  // no graph inputs
}

double MaskFromLogits::expected_width() const {
  double e = 0.0;
  for (int k = 0; k < num_options(); ++k)
    e += weights_[static_cast<size_t>(k)] * static_cast<double>(widths_[static_cast<size_t>(k)]);
  return e;
}

// -------------------------------------------------------------- BranchMix --

BranchMix::BranchMix(std::string name, int num_branches, SearchContext* ctx)
    : DecisionNode(std::move(name), num_branches, ctx) {}

TensorF BranchMix::forward(const std::vector<const TensorF*>& in, bool training) {
  refresh_weights(training);
  if (static_cast<int>(in.size()) != num_options())
    throw std::invalid_argument(name() + ": branch count mismatch");
  TensorF y(in[0]->shape(), 0.f);
  for (int b = 0; b < num_options(); ++b) {
    const TensorF& x = *in[static_cast<size_t>(b)];
    if (x.shape() != y.shape())
      throw std::invalid_argument(name() + ": branch shape mismatch");
    const float a = static_cast<float>(weights_[static_cast<size_t>(b)]);
    for (int64_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
  }
  return y;
}

std::vector<TensorF> BranchMix::backward(const std::vector<const TensorF*>& in,
                                         const TensorF& g) {
  std::vector<double> dL_da(static_cast<size_t>(num_options()), 0.0);
  std::vector<TensorF> grads;
  grads.reserve(in.size());
  for (int b = 0; b < num_options(); ++b) {
    const TensorF& x = *in[static_cast<size_t>(b)];
    const float a = static_cast<float>(weights_[static_cast<size_t>(b)]);
    TensorF gx(x.shape());
    double acc = 0.0;
    for (int64_t i = 0; i < x.size(); ++i) {
      gx[i] = a * g[i];
      acc += static_cast<double>(g[i]) * x[i];
    }
    dL_da[static_cast<size_t>(b)] = acc;
    grads.push_back(std::move(gx));
  }
  accumulate_arch_grad(dL_da);
  return grads;
}

}  // namespace mn::core
