#include "core/supernet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mn::core {

// ---------------------------------------------------------------- ConvCost --

double ConvCost::expected_in() const {
  return in_dec != nullptr ? in_dec->expected_width()
                           : static_cast<double>(in_ch_max);
}

double ConvCost::expected_out() const {
  return out_dec != nullptr ? out_dec->expected_width()
                            : static_cast<double>(out_ch_max);
}

double ConvCost::gate_probability() const {
  return gate != nullptr ? gate->branch_probability(0) : 1.0;
}

double ConvCost::expected_macs() const {
  const double spatial = static_cast<double>(out_h * out_w);
  const double kk = static_cast<double>(kh * kw);
  const double macs = depthwise ? spatial * kk * expected_in()
                                : spatial * kk * expected_in() * expected_out();
  return gate_probability() * macs;
}

double ConvCost::expected_params() const {
  const double kk = static_cast<double>(kh * kw);
  const double p = depthwise ? kk * expected_in() : kk * expected_in() * expected_out();
  return gate_probability() * p;
}

double ConvCost::expected_working_memory() const {
  const double bytes_per = bits == 4 ? 0.5 : 1.0;
  const double in_b = static_cast<double>(in_h * in_w) * expected_in() * bytes_per;
  const double out_b = static_cast<double>(out_h * out_w) * expected_out() * bytes_per;
  return in_b + out_b;
}

double ConvCost::smooth_mops(const mcu::Device& dev) const {
  if (depthwise) return dev.dwconv_mops;
  // Dense layers appear as 1x1 "convs" on a 1x1 spatial grid.
  if (in_h == 1 && in_w == 1 && kh * kw == 1) return dev.fc_mops;
  if (kh * kw == 1) return dev.conv_mops * 1.14;  // pointwise GEMM path
  return dev.conv_mops * 0.86;                    // IM2COL 3x3+ path
}

// ----------------------------------------------------------- cost snapshot --

CostBreakdown evaluate_cost(const Supernet& net, const mcu::Device* latency_device) {
  CostBreakdown c;
  // Fixed per-inference and per-layer dispatch costs of the interpreter
  // (matching the mcu latency model's overheads); constant w.r.t. the
  // architecture parameters so they carry no gradient.
  if (latency_device != nullptr)
    c.expected_latency_s =
        150e-6 + 40e-6 * (2.0 * static_cast<double>(net.conv_costs.size()) + 2.0);
  for (size_t i = 0; i < net.conv_costs.size(); ++i) {
    const ConvCost& cc = net.conv_costs[i];
    c.expected_params += cc.expected_params();
    c.expected_ops += 2.0 * cc.expected_macs();
    if (latency_device != nullptr)
      c.expected_latency_s +=
          2.0 * cc.expected_macs() / (cc.smooth_mops(*latency_device) * 1e6);
    const double wm = cc.expected_working_memory();
    if (wm > c.peak_working_memory) {
      c.peak_working_memory = wm;
      c.peak_conv_index = static_cast<int>(i);
    }
  }
  // Flash estimate: quantized weights (+per-channel bias/scale overhead and
  // graph-def metadata, roughly proportional to layer count).
  double bytes_per_weight = 1.0;
  if (!net.conv_costs.empty() && net.conv_costs.front().bits == 4)
    bytes_per_weight = 0.5;
  c.expected_flash_bytes = c.expected_params * bytes_per_weight +
                           static_cast<double>(net.conv_costs.size()) * 640.0 + 2048.0;
  return c;
}

void accumulate_cost_gradients(Supernet& net, double d_flash, double d_ops,
                               double d_wm, double d_latency,
                               const mcu::Device* latency_device) {
  const CostBreakdown snap = evaluate_cost(net, latency_device);
  double bytes_per_weight = 1.0;
  if (!net.conv_costs.empty() && net.conv_costs.front().bits == 4)
    bytes_per_weight = 0.5;

  for (size_t i = 0; i < net.conv_costs.size(); ++i) {
    const ConvCost& cc = net.conv_costs[i];
    const double spatial = static_cast<double>(cc.out_h * cc.out_w);
    const double kk = static_cast<double>(cc.kh * cc.kw);
    const double e_in = cc.expected_in();
    const double e_out = cc.expected_out();
    const double p = cc.gate_probability();
    const bool is_peak = static_cast<int>(i) == snap.peak_conv_index;
    const double bytes_per_act = cc.bits == 4 ? 0.5 : 1.0;
    // Latency is ops-shaped with a per-layer throughput divisor: fold its
    // chain coefficient into the op-count coefficient for this entry.
    double d_ops_local = d_ops;
    if (latency_device != nullptr && d_latency != 0.0)
      d_ops_local += d_latency / (cc.smooth_mops(*latency_device) * 1e6);

    // d(cost)/d(E_in), d(E_out), d(p) for the three cost terms combined.
    double d_e_in = 0.0, d_e_out = 0.0, d_p = 0.0;
    if (cc.depthwise) {
      const double macs_per_ch = spatial * kk;
      d_e_in += d_ops_local * 2.0 * p * macs_per_ch;
      d_p += d_ops_local * 2.0 * macs_per_ch * e_in;
      d_e_in += d_flash * bytes_per_weight * p * kk;
      d_p += d_flash * bytes_per_weight * kk * e_in;
    } else {
      d_e_in += d_ops_local * 2.0 * p * spatial * kk * e_out;
      d_e_out += d_ops_local * 2.0 * p * spatial * kk * e_in;
      d_p += d_ops_local * 2.0 * spatial * kk * e_in * e_out;
      d_e_in += d_flash * bytes_per_weight * p * kk * e_out;
      d_e_out += d_flash * bytes_per_weight * p * kk * e_in;
      d_p += d_flash * bytes_per_weight * kk * e_in * e_out;
    }
    if (is_peak) {
      // Subgradient of the max through the peak node only.
      d_e_in += d_wm * static_cast<double>(cc.in_h * cc.in_w) * bytes_per_act;
      d_e_out += d_wm * static_cast<double>(cc.out_h * cc.out_w) * bytes_per_act;
    }

    // Chain into decision weights: E_width = sum_k a_k width_k, so
    // d/d a_k = width_k * d/d(E).
    if (cc.in_dec != nullptr && d_e_in != 0.0) {
      std::vector<double> da(cc.in_dec->widths().size());
      for (size_t k = 0; k < da.size(); ++k)
        da[k] = d_e_in * static_cast<double>(cc.in_dec->widths()[k]);
      cc.in_dec->accumulate_arch_grad(da);
    }
    if (cc.out_dec != nullptr && d_e_out != 0.0) {
      std::vector<double> da(cc.out_dec->widths().size());
      for (size_t k = 0; k < da.size(); ++k)
        da[k] = d_e_out * static_cast<double>(cc.out_dec->widths()[k]);
      cc.out_dec->accumulate_arch_grad(da);
    }
    if (cc.gate != nullptr && d_p != 0.0) {
      std::vector<double> da(static_cast<size_t>(cc.gate->num_options()), 0.0);
      da[0] = d_p;  // branch 0 = layer present
      cc.gate->accumulate_arch_grad(da);
    }
  }
}

// ---------------------------------------------------------- width options --

std::vector<int64_t> width_options(int64_t max_channels,
                                   std::span<const double> fracs) {
  std::vector<int64_t> w;
  for (double f : fracs) {
    int64_t c = static_cast<int64_t>(std::lround(f * static_cast<double>(max_channels) / 4.0)) * 4;
    c = std::clamp<int64_t>(c, 4, max_channels);
    w.push_back(c);
  }
  std::sort(w.begin(), w.end());
  w.erase(std::unique(w.begin(), w.end()), w.end());
  if (w.size() < 2)
    throw std::invalid_argument("width_options: search space collapsed");
  return w;
}

// ------------------------------------------------------ DS-CNN supernet ----

Supernet build_ds_cnn_supernet(const DsCnnSearchSpace& space,
                               const models::BuildOptions& opt) {
  Supernet net;
  net.input_shape = space.input;
  net.num_classes = space.num_classes;
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);

  int x = b.input(space.input);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  Shape cur = b.shape(x);

  auto add_mask = [&](int64_t max_ch, const std::string& tag) {
    auto node = std::make_unique<MaskFromLogits>(
        tag, width_options(max_ch, space.width_fracs), max_ch, &net.ctx());
    MaskFromLogits* raw = node.get();
    const int id = b.custom(std::move(node), {}, Shape{max_ch});
    net.width_decisions.push_back(raw);
    return std::pair<int, MaskFromLogits*>{id, raw};
  };

  // Stem.
  nn::Conv2DOptions stem;
  stem.out_channels = space.stem_max;
  stem.kh = space.stem_kh;
  stem.kw = space.stem_kw;
  stem.stride = space.stem_stride;
  const Shape in_shape = cur;
  x = b.conv_bn_relu(x, stem);
  auto [stem_mask_id, stem_mask] = add_mask(space.stem_max, "mask_stem");
  x = b.channel_mul(x, stem_mask_id);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  cur = b.shape(x);
  {
    ConvCost cc;
    cc.kh = stem.kh;
    cc.kw = stem.kw;
    cc.in_h = in_shape.dim(0);
    cc.in_w = in_shape.dim(1);
    cc.in_ch_max = in_shape.dim(2);
    cc.out_h = cur.dim(0);
    cc.out_w = cur.dim(1);
    cc.out_ch_max = space.stem_max;
    cc.out_dec = stem_mask;
    cc.bits = opt.act_bits;
    net.conv_costs.push_back(cc);
  }

  MaskFromLogits* prev_mask = stem_mask;
  for (size_t bi = 0; bi < space.blocks.size(); ++bi) {
    const auto& blk = space.blocks[bi];
    if (blk.max_channels != cur.dim(2))
      throw std::invalid_argument(
          "build_ds_cnn_supernet: block max width must match previous stage "
          "(widths are realized by masks)");
    const Shape block_in = cur;
    const int block_input = x;

    nn::DepthwiseConv2DOptions dw;
    dw.kh = dw.kw = 3;
    dw.stride = blk.stride;
    int y = b.dwconv_bn_relu(x, dw);
    const Shape dw_out = b.shape(y);
    nn::Conv2DOptions pw;
    pw.out_channels = blk.max_channels;
    pw.kh = pw.kw = 1;
    y = b.conv_bn_relu(y, pw);

    // Skip branch: identity (or average pooling when downsampling).
    int skip = block_input;
    if (blk.stride != 1) {
      nn::Pool2DOptions po;
      po.kh = po.kw = blk.stride;
      po.stride = blk.stride;
      po.padding = nn::Padding::kSame;
      skip = b.avg_pool(block_input, po);
    }

    BranchMix* gate = nullptr;
    if (blk.searchable_skip) {
      auto mix = std::make_unique<BranchMix>("skip_" + std::to_string(bi), 2,
                                             &net.ctx());
      gate = mix.get();
      net.skip_decisions.push_back(gate);
      y = b.custom(std::move(mix), {y, skip}, b.shape(y));
    }

    auto [mask_id, mask] = add_mask(blk.max_channels, "mask_" + std::to_string(bi));
    y = b.channel_mul(y, mask_id);
    if (opt.qat) y = b.fake_quant(y, opt.act_bits);
    cur = b.shape(y);
    x = y;

    // Cost entries: depthwise (width follows the previous mask) and
    // pointwise (in = previous mask, out = this block's mask).
    ConvCost dwc;
    dwc.depthwise = true;
    dwc.kh = dwc.kw = 3;
    dwc.in_h = block_in.dim(0);
    dwc.in_w = block_in.dim(1);
    dwc.in_ch_max = block_in.dim(2);
    dwc.out_h = dw_out.dim(0);
    dwc.out_w = dw_out.dim(1);
    dwc.out_ch_max = block_in.dim(2);
    dwc.in_dec = prev_mask;
    dwc.out_dec = prev_mask;
    dwc.gate = gate;
    dwc.bits = opt.act_bits;
    net.conv_costs.push_back(dwc);

    ConvCost pwc;
    pwc.kh = pwc.kw = 1;
    pwc.in_h = dw_out.dim(0);
    pwc.in_w = dw_out.dim(1);
    pwc.in_ch_max = block_in.dim(2);
    pwc.out_h = cur.dim(0);
    pwc.out_w = cur.dim(1);
    pwc.out_ch_max = blk.max_channels;
    pwc.in_dec = prev_mask;
    pwc.out_dec = mask;
    pwc.gate = gate;
    pwc.bits = opt.act_bits;
    net.conv_costs.push_back(pwc);

    prev_mask = mask;
  }

  x = b.global_avg_pool(x);
  x = b.dense(x, space.num_classes);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  {
    ConvCost fc;
    fc.kh = fc.kw = 1;
    fc.in_h = fc.in_w = 1;
    fc.in_ch_max = cur.dim(2);
    fc.out_h = fc.out_w = 1;
    fc.out_ch_max = space.num_classes;
    fc.in_dec = prev_mask;
    fc.bits = opt.act_bits;
    net.conv_costs.push_back(fc);
  }

  net.graph = b.build(x);
  return net;
}

// ------------------------------------------------------- MBv2 supernet ----

MbV2SearchSpace mbv2_search_space(double width_mult, Shape input, int num_classes) {
  const models::MobileNetV2Config ref =
      models::mobilenet_v2(width_mult, input, num_classes);
  MbV2SearchSpace s;
  s.input = input;
  s.num_classes = num_classes;
  s.stem_max = ref.stem_channels;
  s.stem_stride = ref.stem_stride;
  for (const models::IbnBlock& blk : ref.blocks)
    s.blocks.push_back({blk.expansion_channels, blk.out_channels, blk.stride});
  s.head_max = ref.head_channels;
  return s;
}

Supernet build_mbv2_supernet(const MbV2SearchSpace& space,
                             const models::BuildOptions& opt) {
  Supernet net;
  net.input_shape = space.input;
  net.num_classes = space.num_classes;
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);

  int x = b.input(space.input);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  Shape cur = b.shape(x);

  auto add_mask = [&](int64_t max_ch, const std::string& tag) {
    auto node = std::make_unique<MaskFromLogits>(
        tag, width_options(max_ch, space.width_fracs), max_ch, &net.ctx());
    MaskFromLogits* raw = node.get();
    const int id = b.custom(std::move(node), {}, Shape{max_ch});
    net.width_decisions.push_back(raw);
    return std::pair<int, MaskFromLogits*>{id, raw};
  };

  auto add_conv_cost = [&](const Shape& in_s, const Shape& out_s, int64_t kh,
                           int64_t kw, bool depthwise, MaskFromLogits* in_dec,
                           MaskFromLogits* out_dec) {
    ConvCost cc;
    cc.depthwise = depthwise;
    cc.kh = kh;
    cc.kw = kw;
    cc.in_h = in_s.dim(0);
    cc.in_w = in_s.dim(1);
    cc.in_ch_max = in_s.dim(2);
    cc.out_h = out_s.dim(0);
    cc.out_w = out_s.dim(1);
    cc.out_ch_max = out_s.dim(2);
    cc.in_dec = in_dec;
    cc.out_dec = out_dec;
    cc.bits = opt.act_bits;
    net.conv_costs.push_back(cc);
  };

  // Stem (searchable width).
  nn::Conv2DOptions stem;
  stem.out_channels = space.stem_max;
  stem.kh = stem.kw = 3;
  stem.stride = space.stem_stride;
  Shape in_s = cur;
  x = b.conv_bn_relu(x, stem);
  auto [stem_mask_id, stem_mask] = add_mask(space.stem_max, "mask_stem");
  x = b.channel_mul(x, stem_mask_id);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  cur = b.shape(x);
  add_conv_cost(in_s, cur, 3, 3, false, nullptr, stem_mask);

  MaskFromLogits* prev_mask = stem_mask;
  for (size_t bi = 0; bi < space.blocks.size(); ++bi) {
    const auto& blk = space.blocks[bi];
    const Shape block_in = cur;
    int y = x;
    MaskFromLogits* exp_mask = prev_mask;
    Shape exp_shape = block_in;
    if (blk.expansion_max != block_in.dim(2)) {
      nn::Conv2DOptions e;
      e.out_channels = blk.expansion_max;
      e.kh = e.kw = 1;
      y = b.conv_bn_relu(y, e);
      auto [mid, m] = add_mask(blk.expansion_max, "mask_exp_" + std::to_string(bi));
      y = b.channel_mul(y, mid);
      if (opt.qat) y = b.fake_quant(y, opt.act_bits);
      exp_mask = m;
      exp_shape = b.shape(y);
      add_conv_cost(block_in, exp_shape, 1, 1, false, prev_mask, m);
    }
    nn::DepthwiseConv2DOptions dw;
    dw.kh = dw.kw = 3;
    dw.stride = blk.stride;
    y = b.dwconv_bn_relu(y, dw);
    const Shape dw_out = b.shape(y);
    {
      ConvCost cc;
      cc.depthwise = true;
      cc.kh = cc.kw = 3;
      cc.in_h = exp_shape.dim(0);
      cc.in_w = exp_shape.dim(1);
      cc.in_ch_max = exp_shape.dim(2);
      cc.out_h = dw_out.dim(0);
      cc.out_w = dw_out.dim(1);
      cc.out_ch_max = exp_shape.dim(2);
      cc.in_dec = exp_mask;
      cc.out_dec = exp_mask;
      cc.bits = opt.act_bits;
      net.conv_costs.push_back(cc);
    }
    // Linear projection (searchable width).
    nn::Conv2DOptions p;
    p.out_channels = blk.out_max;
    p.kh = p.kw = 1;
    p.use_bias = false;
    y = b.conv2d(y, p);
    y = b.batch_norm(y);
    auto [proj_id, proj_mask] = add_mask(blk.out_max, "mask_proj_" + std::to_string(bi));
    y = b.channel_mul(y, proj_id);
    if (opt.qat) y = b.fake_quant(y, opt.act_bits);
    cur = b.shape(y);
    x = y;
    add_conv_cost(dw_out, cur, 1, 1, false, exp_mask, proj_mask);
    prev_mask = proj_mask;
  }

  if (space.head_max > 0) {
    nn::Conv2DOptions head;
    head.out_channels = space.head_max;
    head.kh = head.kw = 1;
    const Shape hin = cur;
    x = b.conv_bn_relu(x, head);
    auto [hid, hmask] = add_mask(space.head_max, "mask_head");
    x = b.channel_mul(x, hid);
    if (opt.qat) x = b.fake_quant(x, opt.act_bits);
    cur = b.shape(x);
    add_conv_cost(hin, cur, 1, 1, false, prev_mask, hmask);
    prev_mask = hmask;
  }

  x = b.global_avg_pool(x);
  x = b.dense(x, space.num_classes);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  {
    ConvCost fc;
    fc.kh = fc.kw = 1;
    fc.in_h = fc.in_w = 1;
    fc.in_ch_max = cur.dim(2);
    fc.out_h = fc.out_w = 1;
    fc.out_ch_max = space.num_classes;
    fc.in_dec = prev_mask;
    fc.bits = opt.act_bits;
    net.conv_costs.push_back(fc);
  }

  net.graph = b.build(x);
  return net;
}

// -------------------------------------------------------------- extraction --

models::DsCnnConfig extract_ds_cnn(const Supernet& net,
                                   const DsCnnSearchSpace& space) {
  models::DsCnnConfig cfg;
  cfg.input = space.input;
  cfg.num_classes = space.num_classes;
  cfg.stem_kh = space.stem_kh;
  cfg.stem_kw = space.stem_kw;
  cfg.stem_stride = space.stem_stride;
  size_t mask_idx = 0;
  size_t skip_idx = 0;
  cfg.stem_channels = net.width_decisions.at(mask_idx++)->selected_width();
  for (const auto& blk : space.blocks) {
    const int64_t w = net.width_decisions.at(mask_idx++)->selected_width();
    bool keep = true;
    if (blk.searchable_skip) {
      // Branch 0 = block present; branch 1 = skip (drop the layer).
      keep = net.skip_decisions.at(skip_idx++)->selected_option() == 0;
    }
    if (keep || blk.stride != 1) {
      // A downsampling block is kept even if skipped in favour of pooling;
      // approximating the pooled shortcut with a thin block keeps the
      // extracted model a plain DS-CNN.
      cfg.blocks.push_back({w, blk.stride});
    }
  }
  if (cfg.blocks.empty()) cfg.blocks.push_back({cfg.stem_channels, 1});
  return cfg;
}

models::MobileNetV2Config extract_mbv2(const Supernet& net,
                                       const MbV2SearchSpace& space) {
  models::MobileNetV2Config cfg;
  cfg.input = space.input;
  cfg.num_classes = space.num_classes;
  cfg.stem_stride = space.stem_stride;
  size_t mask_idx = 0;
  cfg.stem_channels = net.width_decisions.at(mask_idx++)->selected_width();
  int64_t in_ch = cfg.stem_channels;
  // Mirror the builder's structure: an expansion conv (and its mask) exists
  // iff expansion_max differs from the previous stage's *max* width.
  int64_t prev_max = space.stem_max;
  for (const auto& blk : space.blocks) {
    models::IbnBlock out;
    if (blk.expansion_max != prev_max /* had an expansion conv + mask */) {
      out.expansion_channels = net.width_decisions.at(mask_idx++)->selected_width();
    } else {
      out.expansion_channels = in_ch;
    }
    prev_max = blk.out_max;
    out.out_channels = net.width_decisions.at(mask_idx++)->selected_width();
    out.stride = blk.stride;
    cfg.blocks.push_back(out);
    in_ch = out.out_channels;
  }
  cfg.head_channels =
      space.head_max > 0 ? net.width_decisions.at(mask_idx++)->selected_width() : 0;
  return cfg;
}

}  // namespace mn::core
