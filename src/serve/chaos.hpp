// ChaosSchedule: the deterministic fault plan for a serving run.
//
// Every fault decision is a *stateless* hash of (per-tenant derived seed,
// request sequence, attempt) — no RNG stream is consumed, so the schedule is
// identical at any thread count and any dispatch interleaving, and a failure
// observed in a campaign replays bit-for-bit from the seed alone. Per-tenant
// seeds come from reliability::FaultInjector::derive_seed, so a chaos
// campaign and a standalone injector targeting the same tenant agree.
#pragma once

#include <cstdint>

#include "reliability/fault_injector.hpp"
#include "serve/serve.hpp"

namespace mn::serve {

enum class FaultKind : uint8_t {
  kNone = 0,
  kWeightsBitFlip,   // flash aging: flip bits in the replica's weights blob
  kArenaGuardFlip,   // SRAM soft error: clobber an arena guard-band byte
  kStall,            // wedged DMA/bus: invoke takes stall_ticks extra
  kNonFiniteInput,   // mic glitch: NaN in the request's input tensor
};
const char* fault_kind_name(FaultKind k);

struct ChaosConfig {
  uint64_t seed = 0;
  double fault_rate = 0.0;  // per first-attempt fault probability
  Tick stall_ticks = 8;     // extra service ticks for kStall
  int64_t flip_bits = 4;    // weight bits flipped by kWeightsBitFlip
  // Background SRAM soft errors: every `period` ticks one idle replica's
  // guard band is corrupted silently — only the canary cadence can catch it
  // before a request lands on the poisoned replica (0 = off).
  Tick arena_soft_error_period = 0;
};

class ChaosSchedule {
 public:
  ChaosSchedule() = default;
  explicit ChaosSchedule(ChaosConfig cfg) : cfg_(cfg) {}

  const ChaosConfig& config() const { return cfg_; }
  bool enabled() const {
    return cfg_.fault_rate > 0.0 || cfg_.arena_soft_error_period > 0;
  }

  uint64_t tenant_seed(int64_t tenant) const {
    return reliability::FaultInjector::derive_seed(
        cfg_.seed, static_cast<uint64_t>(tenant));
  }

  // Fault decision for one execution. Retries (attempt > 0) run clean: the
  // injected faults model *transient* events, which is exactly what the
  // engine's retry/backoff policy exists to absorb.
  FaultKind fault_for(int64_t tenant, int64_t seq, int attempt) const;

  // Seed for the fault's own randomness (which bits flip), so the corruption
  // pattern is also a pure function of (tenant, seq, attempt).
  uint64_t fault_seed(int64_t tenant, int64_t seq, int attempt) const;

  // Does a background soft error fire at this tick?
  bool soft_error_at(Tick tick) const {
    return cfg_.arena_soft_error_period > 0 &&
           tick % cfg_.arena_soft_error_period == cfg_.arena_soft_error_period - 1;
  }

 private:
  ChaosConfig cfg_;
};

}  // namespace mn::serve
