#include "serve/chaos.hpp"

#include "tensor/rng.hpp"

namespace mn::serve {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kWeightsBitFlip: return "weights_bit_flip";
    case FaultKind::kArenaGuardFlip: return "arena_guard_flip";
    case FaultKind::kStall: return "stall";
    case FaultKind::kNonFiniteInput: return "non_finite_input";
  }
  return "unknown";
}

uint64_t ChaosSchedule::fault_seed(int64_t tenant, int64_t seq,
                                   int attempt) const {
  return hash_combine(
      hash_combine(tenant_seed(tenant), static_cast<uint64_t>(seq)),
      static_cast<uint64_t>(attempt));
}

FaultKind ChaosSchedule::fault_for(int64_t tenant, int64_t seq,
                                   int attempt) const {
  if (attempt > 0 || cfg_.fault_rate <= 0.0) return FaultKind::kNone;
  const uint64_t key = fault_seed(tenant, seq, attempt);
  if (hash_unit(key) >= cfg_.fault_rate) return FaultKind::kNone;
  // Second independent hash picks the fault class, uniform over the four.
  const uint64_t kind = hash_combine(key, 0x5EEDFA17ULL);
  switch (hash_unit(kind) < 0.25   ? 0
          : hash_unit(kind) < 0.50 ? 1
          : hash_unit(kind) < 0.75 ? 2
                                   : 3) {
    case 0: return FaultKind::kWeightsBitFlip;
    case 1: return FaultKind::kArenaGuardFlip;
    case 2: return FaultKind::kStall;
    default: return FaultKind::kNonFiniteInput;
  }
}

}  // namespace mn::serve
