// serve:: — resilient multi-tenant fleet serving over pooled interpreters.
//
// The serving layer multiplexes many logical device streams (a simulated
// fleet) over a small pool of pre-planned rt::Interpreter instances. Its
// headline contract is robustness, not just throughput: bounded per-tenant
// queues with explicit shed policies, per-request deadlines with budget
// propagation, retry/backoff for transient instance faults, canary health
// checks with quarantine + re-plan, a per-tenant circuit breaker, and
// graceful degradation to a registered smaller/int4 model variant under
// pressure (DESIGN.md §12).
//
// Scheduling runs in *virtual time*: every scheduling decision (admission,
// shedding, deadlines, quarantine cadence) depends only on integer ticks and
// the request sequence, never on host wall-clock — so served/shed/retried
// counts are bit-identical at every thread count, the same guarantee the
// rest of the library makes. Real inference still executes for every served
// request; host wall-clock is *measured* per invoke for the latency
// percentiles but never feeds back into a decision.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compile/compile.hpp"
#include "kernels/backend.hpp"
#include "runtime/model.hpp"

namespace mn::serve {

// Virtual scheduler time. One tick is the engine's scheduling quantum; model
// variants declare their service cost in ticks (see VariantSpec).
using Tick = int64_t;

// What to do when a tenant's bounded queue is full at admission.
enum class ShedPolicy : uint8_t {
  kRejectNewest,  // refuse the arriving request (typed kOverloaded error)
  kDropOldest,    // evict the oldest queued request, admit the new one
};

// Terminal disposition of a request. Every *admitted* request ends in
// exactly one of the completed states; rejected requests never enter the
// queue (their disposition is returned to the caller as a typed error).
enum class Outcome : uint8_t {
  kServed = 0,         // completed on the primary variant within deadline
  kServedDegraded,     // completed on the fallback variant within deadline
  kServedLate,         // completed, but after its deadline (a violation)
  kRejectedQueueFull,  // never admitted: queue full under kRejectNewest
  kRejectedBreaker,    // never admitted: tenant circuit breaker open
  kDroppedOldest,      // admitted, later evicted under kDropOldest
  kExpiredInQueue,     // deadline passed before it could be (re)executed
  kFailed,             // typed request-level failure (e.g. non-finite input)
  kServedShadowed,     // completed on the primary while mirrored to a shadow
  kServedRollback,     // completed on a variant deposed mid-flight (rollout)
  // Sentinel, not a disposition. Keep last; outcome_name() static_asserts
  // against it so adding an enumerator without a name fails to compile.
  kOutcomeCount,
};
const char* outcome_name(Outcome o);

// One model variant a tenant serves on. `service_ticks` is the virtual-time
// cost of one invoke on this variant (deterministic; derive it from
// model.total_macs() or calibrate it — the engine never infers it from
// wall-clock). `instances` replicas are pre-planned into the pool.
struct VariantSpec {
  rt::ModelDef model;
  Tick service_ticks = 1;
  int instances = 1;
  // Kernel backend the variant's replicas execute on (default: MN_BACKEND).
  // Weight panels are packed once per variant and shared by every replica,
  // including quarantine/reimage rebuilds — outputs are bit-identical either
  // way, so fingerprints and golden vectors do not depend on this choice.
  kernels::BackendConfig backend{};
  // Graph-compiler config (default: MN_COMPILE). Like the plan and the
  // packed panels, compilation runs ONCE per variant: the compiled model
  // becomes the golden flash image every replica (including quarantine /
  // reimage rebuilds) is built from. The bit-identity contract means
  // fingerprints and golden vectors do not depend on this choice either.
  compile::CompileConfig compile = compile::CompileConfig::from_env();
};

struct TenantConfig {
  std::string name;
  int64_t queue_capacity = 64;
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  Tick deadline_ticks = 64;        // default per-request budget
  int max_retries = 2;             // re-executions after transient faults
  Tick retry_backoff_ticks = 1;    // delay doubles with each attempt
  int breaker_threshold = 8;       // consecutive request failures to trip
  Tick breaker_cooldown_ticks = 32;
  // Graceful degradation triggers (either; <= 0 disables that trigger).
  // When tripped, new dispatches route to the fallback variant until the
  // pressure stays below the trigger for degrade_hold_ticks.
  int64_t degrade_queue_depth = -1;
  Tick degrade_p99_ticks = -1;
  Tick degrade_hold_ticks = 16;
  // Liveness: ticks without a served request before the tenant's watchdog
  // declares the stream stalled and force-opens the breaker (0 = off).
  Tick watchdog_timeout_ticks = 0;
};

// Aggregate counters. Per-tenant and engine-wide views share this shape.
struct ServeStats {
  int64_t submitted = 0;           // submit() calls
  int64_t admitted = 0;            // entered a queue
  int64_t rejected_queue_full = 0;
  int64_t rejected_breaker = 0;
  int64_t dropped_oldest = 0;
  int64_t expired_in_queue = 0;
  int64_t served = 0;              // on-time, primary variant
  int64_t served_degraded = 0;     // on-time, fallback variant
  int64_t served_late = 0;         // deadline violations
  int64_t served_shadowed = 0;     // on-time, primary, mirrored to a shadow
  int64_t served_rollback = 0;     // on-time, on a variant rolled back mid-flight
  int64_t failed = 0;              // request-level typed failures
  int64_t retries = 0;             // re-executions scheduled
  int64_t instance_faults = 0;     // invokes failed on a poisoned instance
  int64_t quarantines = 0;         // instances quarantined + re-planned
  int64_t canary_detections = 0;   // corruption caught by cadence checks
  int64_t degrade_enters = 0;
  int64_t degrade_exits = 0;
  int64_t breaker_trips = 0;
  int64_t watchdog_stalls = 0;
  // Shadow mirroring (staged rollouts, DESIGN.md §13): candidate invokes run
  // on mirrored traffic and compared bit-exactly against the incumbent's
  // output. Divergences and mirror faults are guard inputs, not failures —
  // the mirrored request itself still completes on the incumbent.
  int64_t shadow_invokes = 0;
  int64_t shadow_divergences = 0;  // mirror output != incumbent output
  int64_t shadow_faults = 0;       // mirror invoke returned a typed error

  int64_t total_served() const {
    return served + served_degraded + served_late + served_shadowed +
           served_rollback;
  }
  // Admitted-or-refused requests that were never served.
  int64_t total_shed() const {
    return rejected_queue_full + rejected_breaker + dropped_oldest +
           expired_in_queue;
  }
  // Every admitted request must end in exactly one completed state.
  int64_t completed() const {
    return total_served() + failed + dropped_oldest + expired_in_queue;
  }
};

// Order statistics over recorded latency samples.
struct LatencyDigest {
  int64_t count = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
  int64_t max = 0;
};
LatencyDigest digest(const std::vector<int64_t>& samples);

}  // namespace mn::serve
