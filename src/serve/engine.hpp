// ServingEngine: the resilient multi-tenant request scheduler (DESIGN.md §12).
//
// Failure-handling state machine per request:
//
//   submit ──breaker open──▶ kRejectedBreaker
//         ──queue full────▶ kRejectedQueueFull (kRejectNewest)
//         ──queue full────▶ evict oldest → kDroppedOldest (kDropOldest)
//         ──admitted──▶ QUEUED
//   QUEUED ──deadline passed──▶ kExpiredInQueue
//          ──budget < any variant's cost──▶ kExpiredInQueue (shed early)
//          ──instance free──▶ EXECUTING  (fallback variant when degraded, or
//                                         when only its cost fits the budget)
//   EXECUTING ──ok──▶ kServed / kServedDegraded / kServedLate
//             ──instance fault (CRC, canary)──▶ quarantine + re-plan replica,
//                       retry with backoff ──retries left──▶ QUEUED
//                                          ──exhausted─────▶ kFailed
//             ──request fault (non-finite)──▶ kFailed, breaker counts it
//
// All transitions run in virtual ticks; see serve.hpp for the determinism
// contract. The engine advances one tick per step(): completions first, then
// watchdog liveness, background chaos, canary health checks, degradation
// triggers, and finally dispatch — new dispatches execute their real
// inference in parallel across the worker pool before the tick ends.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "obs/histogram.hpp"
#include "reliability/watchdog.hpp"
#include "runtime/rt_error.hpp"
#include "serve/admission.hpp"
#include "serve/chaos.hpp"
#include "serve/pool.hpp"
#include "serve/serve.hpp"
#include "tensor/tensor.hpp"

namespace mn::serve {

struct EngineConfig {
  // Health-check cadence: every `canary_period_ticks` one idle replica gets
  // a canary + weights-CRC scan (round-robin; 0 disables).
  Tick canary_period_ticks = 16;
  // How long a quarantined replica stays out of rotation after its re-plan.
  Tick quarantine_cooldown_ticks = 4;
  ChaosConfig chaos;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg = {});

  // Registers a tenant with its primary model variant, an optional fallback
  // (smaller/int4) variant for graceful degradation, and the pool of input
  // tensors its simulated streams cycle through. Returns the tenant id.
  int register_tenant(TenantConfig cfg, VariantSpec primary,
                      std::optional<VariantSpec> fallback,
                      std::vector<TensorF> inputs);

  // Variant-sharing registration: a whole fleet of tenants can serve on one
  // staged variant (the rollout layer registers fleets this way; variant ids
  // come from stage_variant). fallback = -1 disables degradation.
  int register_tenant_on(TenantConfig cfg, int primary_variant,
                         int fallback_variant, std::vector<TensorF> inputs);

  // Stages a model variant into the pool without binding it to any tenant —
  // how a rollout's candidate image enters the fleet. Returns the variant id.
  int stage_variant(VariantSpec spec);

  // --- version-pinned dispatch (staged rollouts, DESIGN.md §13) -------------
  // Re-pins a tenant's primary variant. Queued and future requests dispatch
  // to the new pin; requests already in flight complete on the variant they
  // started on (classified kServedRollback when that variant is no longer
  // the tenant's primary or fallback).
  void pin_primary(int tenant, int variant);
  int primary_variant(int tenant) const;

  // Mirrored shadow execution: while enabled, every on-time primary
  // completion for the tenant re-runs the same input on a dedicated shadow
  // replica of `variant` and compares outputs bit-exactly (int8/int4 paths
  // are deterministic, so any difference is a real divergence). Divergence /
  // fault counts land in ServeStats; the request itself completes on the
  // incumbent as kServedShadowed.
  void enable_shadow(int tenant, int variant);
  void disable_shadow(int tenant);
  bool shadow_enabled(int tenant) const;

  // Dispatches per pool variant (indexed by variant id) — the witness that a
  // rolled-back version received zero traffic after its abort tick.
  int64_t variant_dispatches(int variant) const;

  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  // Windowed virtual-latency p99 for one tenant (the rollout guard input;
  // same ring the degradation trigger reads).
  Tick tenant_p99(int tenant) const;

  // Cumulative per-tenant SLO histogram over served virtual latencies
  // (deterministic log buckets, obs/histogram.hpp) and the merged fleet
  // view. Unlike the lat_window ring these never evict, so p50/p95/p99/p999
  // cover the whole run; like everything tick-derived they are bit-identical
  // at any MN_THREADS.
  const obs::TickHistogram& tenant_histogram(int tenant) const;
  obs::TickHistogram latency_histogram() const;

  // Submits one request for the tenant at the current tick. Deadline budget
  // defaults to the tenant's configured deadline_ticks. Returns the admitted
  // request's sequence number, or a typed rejection: kCircuitOpen (breaker),
  // kOverloaded (queue full under kRejectNewest).
  rt::Expected<int64_t> submit(int tenant, Tick deadline_budget = -1);

  // Advances virtual time by one tick (see class comment for phase order).
  void step();
  // Steps until no queued/retrying/in-flight work remains, at most
  // `max_ticks`. Returns the number of ticks stepped.
  int64_t drain(Tick max_ticks);

  Tick now() const { return now_; }
  bool idle() const;
  int64_t inflight() const { return static_cast<int64_t>(inflight_.size()); }
  int64_t queue_depth(int tenant) const;
  int64_t total_queue_depth() const;
  bool degraded(int tenant) const;
  CircuitBreaker::State breaker_state(int tenant) const;

  const ServeStats& stats() const { return stats_; }
  const ServeStats& tenant_stats(int tenant) const;
  InterpreterPool& pool() { return pool_; }
  const InterpreterPool& pool() const { return pool_; }
  // Per-tenant liveness watchdog (exposed so the timeout can be retuned at
  // runtime, e.g. tightened under load).
  reliability::StreamWatchdog& tenant_watchdog(int tenant);

  // Virtual-time latency of served requests (deterministic) and measured
  // host wall-clock per invoke (microseconds; informational).
  LatencyDigest virtual_latency() const { return digest(virtual_lat_); }
  LatencyDigest wall_latency_us() const;

  // Order-exact hash over every terminal outcome (tenant, seq, outcome,
  // completion tick) — the thread-invariance witness: identical schedules
  // must produce identical fingerprints at any thread count.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct Tenant {
    explicit Tenant(TenantConfig c);

    TenantConfig cfg;
    int primary = -1;
    int fallback = -1;  // -1 = no degradation target
    TenantQueue queue;
    std::deque<Request> retry_queue;  // backoff-gated re-executions
    CircuitBreaker breaker;
    reliability::StreamWatchdog watchdog;
    bool degraded = false;
    Tick degrade_ok_run = 0;   // consecutive ticks below the triggers
    bool stall_latched = false;
    // Shadow mirror: candidate variant id and its dedicated replica (never
    // in the pool's rotation, so mirroring steals no serving capacity).
    int shadow_variant = -1;
    std::unique_ptr<rt::Interpreter> shadow_mirror;
    std::vector<Tick> lat_window;  // ring of recent virtual latencies
    int64_t lat_seen = 0;
    obs::TickHistogram hist;       // cumulative served-latency histogram
    int64_t inflight = 0;
    int64_t next_seq = 0;
    std::vector<TensorF> inputs;
    ServeStats stats;
  };

  struct Inflight {
    Request req;
    int instance = -1;
    int variant = -1;
    Tick dispatched = 0;
    Tick completes = 0;
    FaultKind fault = FaultKind::kNone;
    // Written by the parallel executor:
    rt::ErrorCode result = rt::ErrorCode::kOk;
    int64_t wall_ns = 0;
    // Dequantized output of a successful invoke, kept so the shadow mirror
    // (run serially at completion) can compare against it bit-exactly.
    TensorF output;
  };

  void process_completions();
  void complete(Inflight rec);
  // Serial mirrored invoke for a completed on-time primary request; returns
  // the refined outcome (kServedShadowed) and updates shadow counters.
  Outcome run_shadow(Tenant& t, const Inflight& rec);
  void finish(const Request& req, Outcome o, Tick completion);
  void record_breaker_trips(Tenant& t, int64_t before);
  void run_watchdogs();
  void run_soft_errors();
  void run_canary();
  void evaluate_degradation();
  void dispatch();
  bool dispatch_one(int tenant_index, std::vector<size_t>* fresh);
  void execute_batch(const std::vector<size_t>& fresh);
  void execute_one(Inflight& rec);
  Tick min_service_ticks(const Tenant& t) const;
  Tick tenant_window_p99(const Tenant& t) const;

  EngineConfig cfg_;
  ChaosSchedule chaos_;
  InterpreterPool pool_;
  std::vector<Tenant> tenants_;
  std::vector<Inflight> inflight_;
  Tick now_ = 0;
  int rr_ = 0;  // round-robin dispatch cursor
  ServeStats stats_;
  std::vector<int64_t> variant_dispatches_;  // indexed by pool variant id
  std::vector<int64_t> virtual_lat_;
  std::vector<int64_t> wall_ns_;
  uint64_t fingerprint_ = 0x9E3779B97F4A7C15ULL;
};

}  // namespace mn::serve
