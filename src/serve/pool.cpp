#include "serve/pool.hpp"

#include <stdexcept>

#include "obs/eventlog.hpp"
#include "runtime/planner.hpp"

namespace mn::serve {

int InterpreterPool::add_variant(VariantSpec spec) {
  if (spec.instances < 1)
    throw std::invalid_argument("InterpreterPool: variant needs >= 1 instance");
  if (spec.service_ticks < 1)
    throw std::invalid_argument("InterpreterPool: service_ticks must be >= 1");
  Variant v;
  v.pristine = std::move(spec.model);
  v.pristine.validate();
  // Compile once per variant (like planning and panel packing): the compiled
  // graph becomes the golden flash image all replicas are built from, so the
  // CRC baseline, the shared plan and the packed panels all describe the
  // *compiled* model. Disabled configs are a guaranteed no-op.
  v.compile_report = compile::Pipeline(spec.compile).run(v.pristine);
  v.plan = rt::plan_memory(v.pristine);  // planned once, shared by replicas
  v.backend = spec.backend;
  // Packed once like the plan: replicas alias the same immutable panels, so
  // adding instances costs arena allocation, not re-packing.
  v.packed = rt::pack_model_weights(v.pristine, v.backend);
  v.service_ticks = spec.service_ticks;
  v.weights_crc = v.pristine.weights_crc();
  const int id = static_cast<int>(variants_.size());
  variants_.push_back(std::move(v));
  const Variant& stored = variants_.back();
  for (int i = 0; i < spec.instances; ++i) {
    Instance inst;
    inst.interp = std::make_unique<rt::Interpreter>(
        stored.pristine, stored.plan, stored.backend, stored.packed);
    inst.interp->set_verify_weights_each_invoke(true);
    inst.variant = id;
    instances_.push_back(std::move(inst));
  }
  return id;
}

int InterpreterPool::acquire(int variant, Tick now) const {
  for (size_t i = 0; i < instances_.size(); ++i)
    if (instances_[i].variant == variant && instances_[i].busy_until <= now)
      return static_cast<int>(i);
  return -1;
}

int InterpreterPool::free_instances(int variant, Tick now) const {
  int n = 0;
  for (const Instance& inst : instances_)
    if (inst.variant == variant && inst.busy_until <= now) ++n;
  return n;
}

int InterpreterPool::instances_of(int variant) const {
  int n = 0;
  for (const Instance& inst : instances_)
    if (inst.variant == variant) ++n;
  return n;
}

int64_t InterpreterPool::variant_served(int variant) const {
  int64_t n = 0;
  for (const Instance& inst : instances_)
    if (inst.variant == variant) n += inst.served;
  return n;
}

std::unique_ptr<rt::Interpreter> InterpreterPool::make_replica(
    int variant) const {
  const Variant& v = variants_[static_cast<size_t>(variant)];
  auto interp =
      std::make_unique<rt::Interpreter>(v.pristine, v.plan, v.backend, v.packed);
  interp->set_verify_weights_each_invoke(true);
  return interp;
}

std::optional<rt::RtError> InterpreterPool::health_check(int idx) const {
  const Instance& inst = instances_[static_cast<size_t>(idx)];
  if (auto err = inst.interp->check_canaries()) return err;
  const Variant& v = variants_[static_cast<size_t>(inst.variant)];
  if (inst.interp->model().weights_crc() != v.weights_crc)
    return rt::RtError{rt::ErrorCode::kCrcMismatch,
                       "InterpreterPool: replica weights drifted from the "
                       "golden image"};
  return std::nullopt;
}

void InterpreterPool::quarantine(int idx, Tick until) {
  reimage(idx, instances_[static_cast<size_t>(idx)].variant, until);
}

void InterpreterPool::reimage(int idx, int variant, Tick until) {
  Instance& inst = instances_[static_cast<size_t>(idx)];
  const Variant& v = variants_[static_cast<size_t>(variant)];
  // Re-plan: a fresh interpreter from the pristine model reuses the shared
  // plan and packed panels, so recovery costs one arena allocation — neither
  // a planner run nor a re-pack.
  inst.interp = std::make_unique<rt::Interpreter>(v.pristine, v.plan,
                                                  v.backend, v.packed);
  inst.interp->set_verify_weights_each_invoke(true);
  inst.variant = variant;
  inst.busy_until = until;
  ++inst.rebuilds;
  // Fleet-scoped flight-recorder record; `tick` is the tick the rebuilt
  // replica rejoins rotation (the only virtual time the pool is handed).
  obs::event_emit({obs::EventKind::kReimage, /*tenant=*/-1, /*seq=*/-1, until,
                   idx, variant});
}

bool InterpreterPool::all_healthy() const {
  for (size_t i = 0; i < instances_.size(); ++i)
    if (health_check(static_cast<int>(i))) return false;
  return true;
}

}  // namespace mn::serve
