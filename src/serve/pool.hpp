// InterpreterPool: per-model arena pools of pre-planned rt::Interpreter
// replicas, with instance health checking and quarantine + re-plan.
//
// Each registered variant keeps its pristine ModelDef (the "golden flash
// image") and a MemoryPlan computed exactly once; every replica is built
// from that shared plan, so adding instances costs arena allocation but no
// re-planning. A replica whose live memory drifts from the golden image —
// weights-CRC mismatch or a clobbered arena guard band — is quarantined:
// rebuilt from the pristine model + shared plan and held out of rotation
// for a cooldown before it serves again.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "runtime/interpreter.hpp"
#include "serve/serve.hpp"

namespace mn::serve {

class InterpreterPool {
 public:
  struct Instance {
    std::unique_ptr<rt::Interpreter> interp;
    int variant = -1;
    Tick busy_until = 0;   // virtual tick at which the replica frees up
    int64_t served = 0;    // completed invokes
    int64_t rebuilds = 0;  // quarantine + re-plan events
  };

  // Registers a variant and builds `spec.instances` replicas (>= 1). Every
  // replica verifies its weights CRC on each invoke, so a poisoned flash
  // image is caught at the next request rather than producing garbage.
  // Returns the variant id.
  int add_variant(VariantSpec spec);

  int num_variants() const { return static_cast<int>(variants_.size()); }
  int num_instances() const { return static_cast<int>(instances_.size()); }
  Tick service_ticks(int variant) const {
    return variants_[static_cast<size_t>(variant)].service_ticks;
  }
  // Replica / invoke accounting for one variant (0 instances after all its
  // replicas were re-imaged onto another variant during a rollback).
  int instances_of(int variant) const;
  int64_t variant_served(int variant) const;

  // The golden flash image and the shared plan a variant's replicas are
  // built from (the rollout controller mirrors shadow traffic and golden
  // vectors against these).
  const rt::ModelDef& pristine(int variant) const {
    return variants_[static_cast<size_t>(variant)].pristine;
  }
  // A fresh standalone replica of `variant` (pristine image + shared plan,
  // per-invoke CRC verification armed) that is NOT entered into the pool —
  // used for shadow mirrors and bit-equivalence checks.
  std::unique_ptr<rt::Interpreter> make_replica(int variant) const;

  // Lowest-index healthy replica of `variant` free at `now`, or -1. Does not
  // mark it busy — the engine stamps busy_until with the completion tick.
  int acquire(int variant, Tick now) const;

  // Free replicas of `variant` at `now`.
  int free_instances(int variant, Tick now) const;

  Instance& instance(int idx) { return instances_[static_cast<size_t>(idx)]; }
  const Instance& instance(int idx) const {
    return instances_[static_cast<size_t>(idx)];
  }
  rt::Interpreter& interp(int idx) {
    return *instances_[static_cast<size_t>(idx)].interp;
  }

  // Canary + integrity scan of an (idle) replica: arena guard bands intact
  // and live weights CRC equal to the golden image's.
  std::optional<rt::RtError> health_check(int idx) const;

  // Quarantine + re-plan: rebuild the replica from the pristine model and
  // the shared plan, and hold it out of rotation until `until`.
  void quarantine(int idx, Tick until);

  // Re-image: rebuild the replica from *another* variant's pristine model
  // and shared plan — the OTA flash-rollback analog. The replica leaves its
  // old variant's rotation entirely (instances_of drops) and serves the
  // target variant after the cooldown. quarantine() is re-image onto the
  // replica's own variant.
  void reimage(int idx, int variant, Tick until);

  // True when every replica's live state matches its golden image (used by
  // tests/benches to prove quarantined instances recovered).
  bool all_healthy() const;

  // Kernel backend a variant's replicas execute on.
  kernels::BackendKind variant_backend(int variant) const {
    return variants_[static_cast<size_t>(variant)].backend.kind;
  }

  // Graph-compiler report for a variant (enabled == false when the variant
  // was registered with compilation off). Compilation runs once per variant
  // at add_variant; replicas share its result like the plan and the panels.
  const compile::CompileReport& compile_report(int variant) const {
    return variants_[static_cast<size_t>(variant)].compile_report;
  }

 private:
  struct Variant {
    rt::ModelDef pristine;
    rt::MemoryPlan plan;
    // Packed once alongside the plan; every replica (incl. quarantine and
    // reimage rebuilds) aliases the same immutable panels.
    kernels::BackendConfig backend{};
    std::shared_ptr<const rt::PackedModel> packed;
    compile::CompileReport compile_report;
    Tick service_ticks = 1;
    uint32_t weights_crc = 0;
  };

  std::vector<Variant> variants_;
  std::vector<Instance> instances_;
};

}  // namespace mn::serve
