#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/eventlog.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "reliability/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace mn::serve {

namespace {

constexpr int64_t kLatencyWindow = 128;  // per-tenant p99 ring size

bool is_shed(Outcome o) {
  return o == Outcome::kRejectedQueueFull || o == Outcome::kRejectedBreaker ||
         o == Outcome::kDroppedOldest || o == Outcome::kExpiredInQueue;
}

double percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the sorted samples; exact and deterministic.
  const auto n = static_cast<int64_t>(sorted.size());
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<int64_t>(rank, 1, n);
  return static_cast<double>(sorted[static_cast<size_t>(rank - 1)]);
}

}  // namespace

const char* outcome_name(Outcome o) {
  // Exhaustiveness guard: bump the expected count (and add a case below)
  // whenever an Outcome enumerator is added — a new disposition silently
  // returning "unknown" would corrupt bench metrics and logs. The switch has
  // no default, so -Wswitch also flags a missing case at compile time.
  static_assert(static_cast<int>(Outcome::kOutcomeCount) == 10,
                "Outcome changed: update outcome_name() and this assert");
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kServedDegraded: return "served_degraded";
    case Outcome::kServedLate: return "served_late";
    case Outcome::kRejectedQueueFull: return "rejected_queue_full";
    case Outcome::kRejectedBreaker: return "rejected_breaker";
    case Outcome::kDroppedOldest: return "dropped_oldest";
    case Outcome::kExpiredInQueue: return "expired_in_queue";
    case Outcome::kFailed: return "failed";
    case Outcome::kServedShadowed: return "served_shadowed";
    case Outcome::kServedRollback: return "served_rollback";
    case Outcome::kOutcomeCount: break;  // sentinel, never a disposition
  }
  return "unknown";
}

LatencyDigest digest(const std::vector<int64_t>& samples) {
  LatencyDigest d;
  d.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return d;
  std::vector<int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  d.p50 = percentile(sorted, 0.50);
  d.p95 = percentile(sorted, 0.95);
  d.p99 = percentile(sorted, 0.99);
  d.p999 = percentile(sorted, 0.999);
  d.max = sorted.back();
  return d;
}

ServingEngine::Tenant::Tenant(TenantConfig c)
    : cfg(std::move(c)),
      queue(cfg.queue_capacity, cfg.shed_policy),
      breaker(cfg.breaker_threshold, cfg.breaker_cooldown_ticks),
      watchdog(reliability::WatchdogConfig{
          /*stuck_window=*/8, /*stuck_epsilon=*/1e-6f,
          /*timeout_ticks=*/cfg.watchdog_timeout_ticks}) {}

ServingEngine::ServingEngine(EngineConfig cfg)
    : cfg_(cfg), chaos_(cfg.chaos) {}

int ServingEngine::register_tenant(TenantConfig cfg, VariantSpec primary,
                                   std::optional<VariantSpec> fallback,
                                   std::vector<TensorF> inputs) {
  const int p = stage_variant(std::move(primary));
  const int f = fallback ? stage_variant(std::move(*fallback)) : -1;
  return register_tenant_on(std::move(cfg), p, f, std::move(inputs));
}

int ServingEngine::register_tenant_on(TenantConfig cfg, int primary_variant,
                                      int fallback_variant,
                                      std::vector<TensorF> inputs) {
  if (inputs.empty())
    throw std::invalid_argument("ServingEngine: tenant needs >= 1 input");
  if (primary_variant < 0 || primary_variant >= pool_.num_variants())
    throw std::invalid_argument("ServingEngine: unknown primary variant");
  if (fallback_variant >= pool_.num_variants())
    throw std::invalid_argument("ServingEngine: unknown fallback variant");
  Tenant t(std::move(cfg));
  t.primary = primary_variant;
  t.fallback = fallback_variant < 0 ? -1 : fallback_variant;
  t.inputs = std::move(inputs);
  const int id = static_cast<int>(tenants_.size());
  tenants_.push_back(std::move(t));
  return id;
}

int ServingEngine::stage_variant(VariantSpec spec) {
  const int id = pool_.add_variant(std::move(spec));
  variant_dispatches_.resize(static_cast<size_t>(pool_.num_variants()), 0);
  return id;
}

void ServingEngine::pin_primary(int tenant, int variant) {
  if (variant < 0 || variant >= pool_.num_variants())
    throw std::invalid_argument("ServingEngine: unknown variant to pin");
  tenants_.at(static_cast<size_t>(tenant)).primary = variant;
}

int ServingEngine::primary_variant(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).primary;
}

void ServingEngine::enable_shadow(int tenant, int variant) {
  if (variant < 0 || variant >= pool_.num_variants())
    throw std::invalid_argument("ServingEngine: unknown shadow variant");
  Tenant& t = tenants_.at(static_cast<size_t>(tenant));
  t.shadow_variant = variant;
  t.shadow_mirror = pool_.make_replica(variant);
}

void ServingEngine::disable_shadow(int tenant) {
  Tenant& t = tenants_.at(static_cast<size_t>(tenant));
  t.shadow_variant = -1;
  t.shadow_mirror.reset();
}

bool ServingEngine::shadow_enabled(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).shadow_variant >= 0;
}

int64_t ServingEngine::variant_dispatches(int variant) const {
  return variant_dispatches_.at(static_cast<size_t>(variant));
}

Tick ServingEngine::tenant_p99(int tenant) const {
  return tenant_window_p99(tenants_.at(static_cast<size_t>(tenant)));
}

const obs::TickHistogram& ServingEngine::tenant_histogram(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).hist;
}

obs::TickHistogram ServingEngine::latency_histogram() const {
  obs::TickHistogram merged;
  for (const Tenant& t : tenants_) merged.merge(t.hist);
  return merged;
}

rt::Expected<int64_t> ServingEngine::submit(int tenant, Tick deadline_budget) {
  Tenant& t = tenants_.at(static_cast<size_t>(tenant));
  ++t.stats.submitted;
  ++stats_.submitted;
  if (!t.breaker.allow(now_)) {
    ++t.stats.rejected_breaker;
    ++stats_.rejected_breaker;
    obs::counter_add(obs::Counter::kServeShed, 1);
    obs::event_emit({obs::EventKind::kReject, tenant, /*seq=*/-1, now_,
                     static_cast<int64_t>(Outcome::kRejectedBreaker),
                     t.queue.size()});
    fingerprint_ = hash_combine(
        fingerprint_,
        hash_combine(static_cast<uint64_t>(tenant) << 32 |
                         static_cast<uint64_t>(Outcome::kRejectedBreaker),
                     static_cast<uint64_t>(now_)));
    return rt::RtError{rt::ErrorCode::kCircuitOpen,
                       "serve: tenant circuit breaker is open"};
  }
  Request r;
  r.tenant = tenant;
  r.seq = t.next_seq++;
  r.input_index = r.seq % static_cast<int64_t>(t.inputs.size());
  r.arrival = now_;
  const Tick budget =
      deadline_budget > 0 ? deadline_budget : t.cfg.deadline_ticks;
  r.deadline = now_ + budget;
  r.not_before = now_;
  const int64_t seq = r.seq;
  TenantQueue::AdmitResult res = t.queue.push(std::move(r));
  if (!res.admitted) {
    ++t.stats.rejected_queue_full;
    ++stats_.rejected_queue_full;
    obs::counter_add(obs::Counter::kServeShed, 1);
    obs::event_emit({obs::EventKind::kReject, tenant, seq, now_,
                     static_cast<int64_t>(Outcome::kRejectedQueueFull),
                     t.queue.size()});
    fingerprint_ = hash_combine(
        fingerprint_,
        hash_combine(static_cast<uint64_t>(tenant) << 32 |
                         static_cast<uint64_t>(Outcome::kRejectedQueueFull),
                     static_cast<uint64_t>(seq)));
    return rt::RtError{rt::ErrorCode::kOverloaded,
                       "serve: tenant queue full (kRejectNewest)"};
  }
  if (res.evicted) finish(*res.evicted, Outcome::kDroppedOldest, now_);
  ++t.stats.admitted;
  ++stats_.admitted;
  obs::counter_add(obs::Counter::kServeAdmitted, 1);
  obs::gauge_set_max(obs::Gauge::kServeQueueDepthPeak, t.queue.size());
  obs::event_emit({obs::EventKind::kAdmit, tenant, seq, now_, t.queue.size(),
                   now_ + budget});
  return seq;
}

void ServingEngine::step() {
  process_completions();
  run_watchdogs();
  run_soft_errors();
  run_canary();
  evaluate_degradation();
  dispatch();
  obs::gauge_set_max(obs::Gauge::kServeInflightPeak,
                     static_cast<int64_t>(inflight_.size()));
  if (obs::tracing_enabled()) {
    obs::trace_counter("serve_queue_depth",
                       static_cast<double>(total_queue_depth()),
                       obs::Cat::kRuntime);
    obs::trace_counter("serve_inflight", static_cast<double>(inflight_.size()),
                       obs::Cat::kRuntime);
    // Per-tenant SLO tracks (counter names must be static literals, so the
    // first kMaxTenantTracks tenants get their own Perfetto track).
    static constexpr int kMaxTenantTracks = 8;
    static constexpr const char* kP50Track[kMaxTenantTracks] = {
        "serve_t0_p50_ticks", "serve_t1_p50_ticks", "serve_t2_p50_ticks",
        "serve_t3_p50_ticks", "serve_t4_p50_ticks", "serve_t5_p50_ticks",
        "serve_t6_p50_ticks", "serve_t7_p50_ticks"};
    static constexpr const char* kP99Track[kMaxTenantTracks] = {
        "serve_t0_p99_ticks", "serve_t1_p99_ticks", "serve_t2_p99_ticks",
        "serve_t3_p99_ticks", "serve_t4_p99_ticks", "serve_t5_p99_ticks",
        "serve_t6_p99_ticks", "serve_t7_p99_ticks"};
    for (size_t i = 0; i < tenants_.size() &&
                       i < static_cast<size_t>(kMaxTenantTracks);
         ++i) {
      const obs::TickHistogram& h = tenants_[i].hist;
      if (h.count() == 0) continue;
      obs::trace_counter(kP50Track[i], static_cast<double>(h.percentile(0.50)),
                         obs::Cat::kRuntime);
      obs::trace_counter(kP99Track[i], static_cast<double>(h.percentile(0.99)),
                         obs::Cat::kRuntime);
    }
  }
  ++now_;
}

int64_t ServingEngine::drain(Tick max_ticks) {
  int64_t stepped = 0;
  while (!idle() && stepped < max_ticks) {
    step();
    ++stepped;
  }
  return stepped;
}

bool ServingEngine::idle() const {
  if (!inflight_.empty()) return false;
  for (const Tenant& t : tenants_)
    if (!t.queue.empty() || !t.retry_queue.empty()) return false;
  return true;
}

int64_t ServingEngine::queue_depth(int tenant) const {
  const Tenant& t = tenants_.at(static_cast<size_t>(tenant));
  return t.queue.size() + static_cast<int64_t>(t.retry_queue.size());
}

int64_t ServingEngine::total_queue_depth() const {
  int64_t n = 0;
  for (size_t i = 0; i < tenants_.size(); ++i)
    n += queue_depth(static_cast<int>(i));
  return n;
}

bool ServingEngine::degraded(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).degraded;
}

CircuitBreaker::State ServingEngine::breaker_state(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).breaker.state();
}

const ServeStats& ServingEngine::tenant_stats(int tenant) const {
  return tenants_.at(static_cast<size_t>(tenant)).stats;
}

reliability::StreamWatchdog& ServingEngine::tenant_watchdog(int tenant) {
  return tenants_.at(static_cast<size_t>(tenant)).watchdog;
}

LatencyDigest ServingEngine::wall_latency_us() const {
  std::vector<int64_t> us;
  us.reserve(wall_ns_.size());
  for (int64_t ns : wall_ns_) us.push_back(ns / 1000);
  return digest(us);
}

Tick ServingEngine::min_service_ticks(const Tenant& t) const {
  Tick m = pool_.service_ticks(t.primary);
  if (t.fallback >= 0) m = std::min(m, pool_.service_ticks(t.fallback));
  return m;
}

Tick ServingEngine::tenant_window_p99(const Tenant& t) const {
  if (t.lat_window.empty()) return 0;
  std::vector<int64_t> sorted(t.lat_window.begin(), t.lat_window.end());
  std::sort(sorted.begin(), sorted.end());
  return static_cast<Tick>(percentile(sorted, 0.99));
}

// --- completion path --------------------------------------------------------

void ServingEngine::process_completions() {
  if (inflight_.empty()) return;
  // Indices of records due at this tick, in deterministic order: completion
  // tick, then tenant, then sequence — never insertion or thread order.
  std::vector<size_t> due;
  for (size_t i = 0; i < inflight_.size(); ++i)
    if (inflight_[i].completes <= now_) due.push_back(i);
  if (due.empty()) return;
  std::sort(due.begin(), due.end(), [&](size_t a, size_t b) {
    const Inflight& x = inflight_[a];
    const Inflight& y = inflight_[b];
    if (x.completes != y.completes) return x.completes < y.completes;
    if (x.req.tenant != y.req.tenant) return x.req.tenant < y.req.tenant;
    return x.req.seq < y.req.seq;
  });
  std::vector<Inflight> done;
  done.reserve(due.size());
  for (size_t idx : due) done.push_back(std::move(inflight_[idx]));
  std::vector<Inflight> rest;
  rest.reserve(inflight_.size() - due.size());
  for (size_t i = 0; i < inflight_.size(); ++i)
    if (inflight_[i].completes > now_) rest.push_back(std::move(inflight_[i]));
  inflight_ = std::move(rest);
  for (Inflight& rec : done) complete(std::move(rec));
}

void ServingEngine::record_breaker_trips(Tenant& t, int64_t before) {
  const int64_t delta = t.breaker.trips() - before;
  t.stats.breaker_trips += delta;
  stats_.breaker_trips += delta;
  if (delta > 0) {
    // Breaker open: a flight-recorder incident. Capture the trailing events
    // so the postmortem shows what the tenant was doing when it tripped.
    const auto id = static_cast<int32_t>(&t - tenants_.data());
    obs::event_emit({obs::EventKind::kBreakerTrip, id, /*seq=*/-1, now_,
                     t.breaker.trips(), delta});
    obs::event_postmortem("breaker_open", now_);
  }
}

void ServingEngine::complete(Inflight rec) {
  Tenant& t = tenants_[static_cast<size_t>(rec.req.tenant)];
  --t.inflight;
  InterpreterPool::Instance& inst = pool_.instance(rec.instance);
  switch (rec.result) {
    case rt::ErrorCode::kOk: {
      ++inst.served;
      t.breaker.on_success();
      t.watchdog.record_progress();
      t.stall_latched = false;
      // Deadline first; then classify by the variant the request *ran* on.
      // A variant that is neither the tenant's current primary nor fallback
      // was deposed by a rollback while this request was in flight.
      Outcome o = rec.completes > rec.req.deadline ? Outcome::kServedLate
                  : rec.variant == t.primary       ? run_shadow(t, rec)
                  : rec.variant == t.fallback      ? Outcome::kServedDegraded
                                                   : Outcome::kServedRollback;
      const Tick lat = rec.completes - rec.req.arrival;
      virtual_lat_.push_back(lat);
      wall_ns_.push_back(rec.wall_ns);
      t.hist.record(lat);
      if (static_cast<int64_t>(t.lat_window.size()) < kLatencyWindow) {
        t.lat_window.push_back(lat);
      } else {
        t.lat_window[static_cast<size_t>(t.lat_seen % kLatencyWindow)] = lat;
      }
      ++t.lat_seen;
      finish(rec.req, o, rec.completes);
      break;
    }
    case rt::ErrorCode::kCrcMismatch:
    case rt::ErrorCode::kArenaOverrun: {
      // Instance fault: the replica's memory is poisoned. Quarantine it and
      // retry the request elsewhere — the fault is the machine's, not the
      // request's, so it does not count against the tenant's breaker.
      ++t.stats.instance_faults;
      ++stats_.instance_faults;
      pool_.quarantine(rec.instance, now_ + cfg_.quarantine_cooldown_ticks);
      ++t.stats.quarantines;
      ++stats_.quarantines;
      obs::counter_add(obs::Counter::kServeQuarantines, 1);
      obs::event_emit({obs::EventKind::kQuarantine, rec.req.tenant,
                       rec.req.seq, now_, rec.instance,
                       now_ + cfg_.quarantine_cooldown_ticks});
      Request retry = rec.req;
      ++retry.attempt;
      const Tick backoff = t.cfg.retry_backoff_ticks
                           << std::min(retry.attempt - 1, 16);
      retry.not_before = now_ + std::max<Tick>(backoff, 1);
      const bool feasible =
          retry.not_before + min_service_ticks(t) <= retry.deadline;
      if (retry.attempt <= t.cfg.max_retries && feasible) {
        obs::event_emit({obs::EventKind::kRetry, retry.tenant, retry.seq,
                         now_, retry.attempt, retry.not_before});
        t.retry_queue.push_back(std::move(retry));
        ++t.stats.retries;
        ++stats_.retries;
        obs::counter_add(obs::Counter::kServeRetries, 1);
      } else if (!feasible) {
        finish(rec.req, Outcome::kExpiredInQueue, now_);
      } else {
        finish(rec.req, Outcome::kFailed, now_);
      }
      break;
    }
    default: {
      // Request fault (non-finite input/output, shape mismatch): the
      // request itself is bad — fail it and let the breaker count it.
      const int64_t before = t.breaker.trips();
      t.breaker.on_failure(now_);
      record_breaker_trips(t, before);
      finish(rec.req, Outcome::kFailed, now_);
      break;
    }
  }
}

void ServingEngine::finish(const Request& req, Outcome o, Tick completion) {
  Tenant& t = tenants_[static_cast<size_t>(req.tenant)];
  switch (o) {
    case Outcome::kServed: ++t.stats.served; ++stats_.served; break;
    case Outcome::kServedDegraded:
      ++t.stats.served_degraded;
      ++stats_.served_degraded;
      obs::counter_add(obs::Counter::kServeDegraded, 1);
      break;
    case Outcome::kServedLate: ++t.stats.served_late; ++stats_.served_late; break;
    case Outcome::kDroppedOldest:
      ++t.stats.dropped_oldest;
      ++stats_.dropped_oldest;
      break;
    case Outcome::kExpiredInQueue:
      ++t.stats.expired_in_queue;
      ++stats_.expired_in_queue;
      break;
    case Outcome::kFailed: ++t.stats.failed; ++stats_.failed; break;
    case Outcome::kServedShadowed:
      ++t.stats.served_shadowed;
      ++stats_.served_shadowed;
      break;
    case Outcome::kServedRollback:
      ++t.stats.served_rollback;
      ++stats_.served_rollback;
      break;
    case Outcome::kRejectedQueueFull:
    case Outcome::kRejectedBreaker:
    case Outcome::kOutcomeCount:
      break;  // recorded at submit (or sentinel); never reach finish()
  }
  if (is_shed(o)) obs::counter_add(obs::Counter::kServeShed, 1);
  // The one terminal emission point: every admitted request flows through
  // finish() exactly once, so the event accounting invariant (one kComplete
  // per kAdmit) holds by construction — mn_regress gates it as exact-zero.
  obs::event_emit({obs::EventKind::kComplete, req.tenant, req.seq, completion,
                   static_cast<int64_t>(o), completion - req.arrival});
  fingerprint_ = hash_combine(
      fingerprint_,
      hash_combine(static_cast<uint64_t>(req.tenant) << 32 |
                       static_cast<uint64_t>(o),
                   hash_combine(static_cast<uint64_t>(req.seq),
                                static_cast<uint64_t>(completion))));
}

// --- background phases ------------------------------------------------------

void ServingEngine::run_watchdogs() {
  for (Tenant& t : tenants_) {
    t.watchdog.advance(1);
    // Liveness only means anything while the tenant has outstanding work; an
    // idle stream is quiet, not stalled.
    const bool has_work =
        !t.queue.empty() || !t.retry_queue.empty() || t.inflight > 0;
    if (t.watchdog.stalled() && has_work) {
      if (!t.stall_latched) {
        t.stall_latched = true;
        ++t.stats.watchdog_stalls;
        ++stats_.watchdog_stalls;
        const auto id = static_cast<int32_t>(&t - tenants_.data());
        obs::event_emit({obs::EventKind::kWatchdogStall, id, /*seq=*/-1, now_,
                         t.queue.size(),
                         static_cast<int64_t>(t.retry_queue.size())});
        const int64_t before = t.breaker.trips();
        t.breaker.force_open(now_);
        record_breaker_trips(t, before);
        // Capture last (after the forced breaker trip) so the stall
        // postmortem includes the whole incident, trip included.
        obs::event_postmortem("watchdog_stall", now_);
      }
    } else if (!t.watchdog.stalled()) {
      t.stall_latched = false;
    }
  }
}

void ServingEngine::run_soft_errors() {
  if (!chaos_.soft_error_at(now_)) return;
  const int n = pool_.num_instances();
  if (n == 0) return;
  // Deterministic idle victim: start from a hashed index, take the first
  // replica not currently executing (corrupting a busy replica would race
  // with its kernel threads).
  const int start = static_cast<int>(
      hash_combine(chaos_.config().seed, static_cast<uint64_t>(now_)) %
      static_cast<uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    const int idx = (start + k) % n;
    if (pool_.instance(idx).busy_until > now_) continue;
    std::span<uint8_t> arena = pool_.interp(idx).mutable_arena();
    if (arena.empty()) continue;
    arena[0] ^= 0x3C;  // leading guard-band byte: silent SRAM corruption
    break;
  }
}

void ServingEngine::run_canary() {
  if (cfg_.canary_period_ticks <= 0 || pool_.num_instances() == 0) return;
  if (now_ % cfg_.canary_period_ticks != 0) return;
  const int idx = static_cast<int>((now_ / cfg_.canary_period_ticks) %
                                   pool_.num_instances());
  if (pool_.instance(idx).busy_until > now_) return;  // only idle replicas
  if (pool_.health_check(idx)) {
    pool_.quarantine(idx, now_ + cfg_.quarantine_cooldown_ticks);
    ++stats_.canary_detections;
    ++stats_.quarantines;
    obs::counter_add(obs::Counter::kServeQuarantines, 1);
    obs::event_emit({obs::EventKind::kCanaryDetect, /*tenant=*/-1, /*seq=*/-1,
                     now_, idx, now_ + cfg_.quarantine_cooldown_ticks});
    fingerprint_ = hash_combine(
        fingerprint_, hash_combine(0xCA11A57ULL | static_cast<uint64_t>(idx)
                                                      << 32,
                                   static_cast<uint64_t>(now_)));
  }
}

void ServingEngine::evaluate_degradation() {
  for (Tenant& t : tenants_) {
    if (t.fallback < 0) continue;
    const bool depth_hot = t.cfg.degrade_queue_depth > 0 &&
                           t.queue.size() > t.cfg.degrade_queue_depth;
    const bool p99_hot = t.cfg.degrade_p99_ticks > 0 &&
                         t.lat_seen >= kLatencyWindow / 8 &&
                         tenant_window_p99(t) > t.cfg.degrade_p99_ticks;
    if (depth_hot || p99_hot) {
      t.degrade_ok_run = 0;
      if (!t.degraded) {
        t.degraded = true;
        ++t.stats.degrade_enters;
        ++stats_.degrade_enters;
        obs::event_emit({obs::EventKind::kDegradeEnter,
                         static_cast<int32_t>(&t - tenants_.data()),
                         /*seq=*/-1, now_, t.queue.size(),
                         tenant_window_p99(t)});
      }
    } else if (t.degraded) {
      // Hysteresis: require degrade_hold_ticks of calm before recovering.
      if (++t.degrade_ok_run >= t.cfg.degrade_hold_ticks) {
        t.degraded = false;
        t.degrade_ok_run = 0;
        ++t.stats.degrade_exits;
        ++stats_.degrade_exits;
        obs::event_emit({obs::EventKind::kDegradeExit,
                         static_cast<int32_t>(&t - tenants_.data()),
                         /*seq=*/-1, now_, t.queue.size(),
                         tenant_window_p99(t)});
      }
    }
  }
}

// --- dispatch ---------------------------------------------------------------

void ServingEngine::dispatch() {
  if (tenants_.empty()) return;
  std::vector<size_t> fresh;
  bool any = true;
  // Round-robin fairness: one dispatch per tenant per sweep, sweeping until
  // no tenant can make progress (out of work or out of free instances).
  while (any) {
    any = false;
    for (size_t k = 0; k < tenants_.size(); ++k) {
      const int ti = static_cast<int>((static_cast<size_t>(rr_) + k) %
                                      tenants_.size());
      if (dispatch_one(ti, &fresh)) any = true;
    }
  }
  rr_ = static_cast<int>((static_cast<size_t>(rr_) + 1) % tenants_.size());
  if (!fresh.empty()) execute_batch(fresh);
}

bool ServingEngine::dispatch_one(int tenant_index, std::vector<size_t>* fresh) {
  Tenant& t = tenants_[static_cast<size_t>(tenant_index)];
  // Shed work whose deadline already passed — it consumes no capacity.
  while (!t.queue.empty() && now_ >= t.queue.front().deadline)
    finish(t.queue.pop(), Outcome::kExpiredInQueue, now_);
  for (auto it = t.retry_queue.begin(); it != t.retry_queue.end();) {
    if (now_ >= it->deadline) {
      finish(*it, Outcome::kExpiredInQueue, now_);
      it = t.retry_queue.erase(it);
    } else {
      ++it;
    }
  }
  // Candidate: the first backoff-expired retry wins over fresh queue work
  // (it has already consumed an execution and is closest to its deadline).
  auto retry_it = t.retry_queue.end();
  for (auto it = t.retry_queue.begin(); it != t.retry_queue.end(); ++it)
    if (it->not_before <= now_) { retry_it = it; break; }
  const bool from_retry = retry_it != t.retry_queue.end();
  if (!from_retry && t.queue.empty()) return false;
  const Request& cand = from_retry ? *retry_it : t.queue.front();

  // Variant choice: degraded tenants route to the fallback; budget
  // propagation routes there anyway when only the cheaper variant still
  // fits the remaining deadline budget.
  int variant = (t.degraded && t.fallback >= 0) ? t.fallback : t.primary;
  const Tick remaining = cand.deadline - now_;
  if (pool_.service_ticks(variant) > remaining && t.fallback >= 0 &&
      pool_.service_ticks(t.fallback) <= remaining)
    variant = t.fallback;
  if (pool_.service_ticks(variant) > remaining) {
    // No variant can meet the deadline — shed now rather than serve late.
    Request r = from_retry ? *retry_it : t.queue.front();
    if (from_retry) t.retry_queue.erase(retry_it);
    else t.queue.pop();
    finish(r, Outcome::kExpiredInQueue, now_);
    return true;
  }
  const int idx = pool_.acquire(variant, now_);
  if (idx < 0) return false;  // pool saturated; request stays queued

  Inflight rec;
  rec.req = from_retry ? *retry_it : t.queue.front();
  if (from_retry) t.retry_queue.erase(retry_it);
  else t.queue.pop();
  rec.instance = idx;
  rec.variant = variant;
  rec.dispatched = now_;
  rec.fault = chaos_.fault_for(tenant_index, rec.req.seq, rec.req.attempt);
  Tick service = pool_.service_ticks(variant);
  if (rec.fault == FaultKind::kStall) service += chaos_.config().stall_ticks;
  rec.completes = now_ + service;
  pool_.instance(idx).busy_until = rec.completes;
  ++variant_dispatches_[static_cast<size_t>(variant)];
  ++t.inflight;
  obs::event_emit({obs::EventKind::kDispatch, rec.req.tenant, rec.req.seq,
                   now_, variant, rec.req.attempt});
  inflight_.push_back(std::move(rec));
  fresh->push_back(inflight_.size() - 1);
  return true;
}

// --- execution --------------------------------------------------------------

void ServingEngine::execute_batch(const std::vector<size_t>& fresh) {
  // Real inference for every dispatch, fanned out across the worker pool.
  // Each record owns a distinct instance, so the only shared state threads
  // touch is their own Inflight slot. Kernels' nested parallel_for calls run
  // serially inline (the pool rejects nested regions), so this composes.
  parallel::parallel_for(
      0, static_cast<int64_t>(fresh.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
          execute_one(inflight_[fresh[static_cast<size_t>(i)]]);
      });
}

void ServingEngine::execute_one(Inflight& rec) {
  Tenant& t = tenants_[static_cast<size_t>(rec.req.tenant)];
  rt::Interpreter& interp = pool_.interp(rec.instance);
  obs::SpanScope span("serve_invoke", obs::Cat::kRuntime, "tenant",
                      rec.req.tenant, "seq", rec.req.seq);
  const TensorF& base =
      t.inputs[static_cast<size_t>(rec.req.input_index) % t.inputs.size()];

  // Inject this execution's scheduled fault before invoking. Bit flips are
  // persistent (flash aging): the CRC check catches them, the engine
  // quarantines the replica, and the rebuild restores the pristine image.
  switch (rec.fault) {
    case FaultKind::kWeightsBitFlip: {
      reliability::FaultInjector fi(
          chaos_.fault_seed(rec.req.tenant, rec.req.seq, rec.req.attempt));
      fi.flip_exact_bits(interp.mutable_weights(),
                         chaos_.config().flip_bits);
      break;
    }
    case FaultKind::kArenaGuardFlip: {
      std::span<uint8_t> arena = interp.mutable_arena();
      if (!arena.empty()) arena[arena.size() - 1] ^= 0x5A;
      break;
    }
    case FaultKind::kNone:
    case FaultKind::kStall:
    case FaultKind::kNonFiniteInput:
      break;
  }

  const auto t0 = std::chrono::steady_clock::now();
  rt::Expected<TensorF> out = [&] {
    if (rec.fault == FaultKind::kNonFiniteInput) {
      TensorF poisoned = base;
      poisoned[rec.req.seq % poisoned.size()] =
          std::numeric_limits<float>::quiet_NaN();
      return interp.try_invoke(poisoned);
    }
    return interp.try_invoke(base);
  }();
  rec.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  rec.result = out.ok() ? rt::ErrorCode::kOk : out.error().code;
  if (out.ok()) rec.output = std::move(out).value();
}

// --- shadow mirroring -------------------------------------------------------

Outcome ServingEngine::run_shadow(Tenant& t, const Inflight& rec) {
  if (t.shadow_variant < 0 || !t.shadow_mirror) return Outcome::kServed;
  ++t.stats.shadow_invokes;
  ++stats_.shadow_invokes;
  const TensorF& base =
      t.inputs[static_cast<size_t>(rec.req.input_index) % t.inputs.size()];
  rt::Expected<TensorF> out = t.shadow_mirror->try_invoke(base);
  if (!out.ok()) {
    ++t.stats.shadow_faults;
    ++stats_.shadow_faults;
    // A faulted mirror may hold poisoned memory; rebuild it from the
    // candidate's pristine image so subsequent mirrors stay meaningful.
    t.shadow_mirror = pool_.make_replica(t.shadow_variant);
    return Outcome::kServedShadowed;
  }
  // Bit-exact comparison: the int8/int4 inference paths are deterministic at
  // every thread count, so any difference is a real model divergence, not
  // numerical noise.
  const TensorF& mirror = out.value();
  bool diverged = mirror.size() != rec.output.size();
  if (!diverged) {
    for (int64_t i = 0; i < mirror.size(); ++i)
      if (mirror[i] != rec.output[i]) {
        diverged = true;
        break;
      }
  }
  if (diverged) {
    ++t.stats.shadow_divergences;
    ++stats_.shadow_divergences;
  }
  return Outcome::kServedShadowed;
}

}  // namespace mn::serve
