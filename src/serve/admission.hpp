// Admission control: bounded per-tenant queues with explicit shed policies,
// and the per-tenant circuit breaker that refuses work for a tenant whose
// requests keep failing (so one poisoned stream cannot burn pool capacity
// that healthy tenants need).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "serve/serve.hpp"

namespace mn::serve {

// A queued unit of work. Payload is an index into the tenant's registered
// input pool, so millions of requests share a handful of input tensors.
struct Request {
  int tenant = -1;
  int64_t seq = -1;        // per-tenant admission sequence number
  int64_t input_index = 0;
  Tick arrival = 0;
  Tick deadline = 0;       // absolute tick; arrival + budget
  int attempt = 0;         // 0 = first execution, >0 = retry
  Tick not_before = 0;     // backoff gate for retries
};

// Bounded FIFO with the two shed policies. Eviction under kDropOldest hands
// the victim back so the engine can record its disposition.
class TenantQueue {
 public:
  TenantQueue(int64_t capacity, ShedPolicy policy)
      : capacity_(capacity < 1 ? 1 : capacity), policy_(policy) {}

  struct AdmitResult {
    bool admitted = false;
    std::optional<Request> evicted;  // set when kDropOldest made room
  };
  AdmitResult push(Request r) {
    AdmitResult res;
    if (static_cast<int64_t>(q_.size()) >= capacity_) {
      if (policy_ == ShedPolicy::kRejectNewest) return res;
      res.evicted = q_.front();
      q_.pop_front();
    }
    q_.push_back(std::move(r));
    res.admitted = true;
    return res;
  }

  bool empty() const { return q_.empty(); }
  int64_t size() const { return static_cast<int64_t>(q_.size()); }
  int64_t capacity() const { return capacity_; }
  const Request& front() const { return q_.front(); }
  Request pop() {
    Request r = q_.front();
    q_.pop_front();
    return r;
  }

 private:
  int64_t capacity_;
  ShedPolicy policy_;
  std::deque<Request> q_;
};

// Per-tenant circuit breaker: trips open after `threshold` consecutive
// request-level failures, refuses admissions for `cooldown` ticks, then
// half-opens and lets a single probe request through; the probe's outcome
// decides between closing and re-opening.
class CircuitBreaker {
 public:
  CircuitBreaker(int threshold, Tick cooldown)
      : threshold_(threshold < 1 ? 1 : threshold), cooldown_(cooldown) {}

  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  // Admission gate. In kOpen, flips to kHalfOpen once the cooldown elapsed;
  // kHalfOpen admits exactly one outstanding probe.
  bool allow(Tick now) {
    if (state_ == State::kOpen) {
      if (now - opened_at_ < cooldown_) return false;
      state_ = State::kHalfOpen;
      probe_outstanding_ = false;
    }
    if (state_ == State::kHalfOpen) {
      if (probe_outstanding_) return false;
      probe_outstanding_ = true;
      return true;
    }
    return true;
  }

  void on_success() {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    probe_outstanding_ = false;
  }

  void on_failure(Tick now) {
    ++consecutive_failures_;
    if (state_ == State::kHalfOpen || consecutive_failures_ >= threshold_)
      trip(now);
  }

  // External stall verdict (watchdog): open immediately.
  void force_open(Tick now) { trip(now); }

  State state() const { return state_; }
  int64_t trips() const { return trips_; }

 private:
  void trip(Tick now) {
    state_ = State::kOpen;
    opened_at_ = now;
    consecutive_failures_ = 0;
    probe_outstanding_ = false;
    ++trips_;
  }

  int threshold_;
  Tick cooldown_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Tick opened_at_ = 0;
  bool probe_outstanding_ = false;
  int64_t trips_ = 0;
};

}  // namespace mn::serve
