// Structured divergence-recovery events for the training/search layer.
//
// A multi-hour DNAS run must not be discarded because one exploding gradient
// poisoned the supernet: the Trainer and run_dnas watch for non-finite
// loss/gradients/parameters/arch-logits, roll back to the last good
// epoch-boundary snapshot, shrink the learning rate, and record what
// happened here — a structured log instead of silently emitted garbage.
//
// Header-only on purpose: mn::nn consumes these types, and the reliability
// *library* links the runtime (which links nn), so a compiled dependency
// would be a cycle.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

namespace mn::reliability {

enum class RecoveryKind : uint8_t {
  kNonFiniteLoss,       // NaN/Inf training or penalty loss
  kNonFiniteGradient,   // NaN/Inf in a parameter gradient (pre-step)
  kNonFiniteParam,      // NaN/Inf in a weight value (post-step)
  kNonFiniteArchLogit,  // NaN/Inf in a DNAS architecture logit (post-step)
};

inline const char* recovery_kind_name(RecoveryKind k) {
  switch (k) {
    case RecoveryKind::kNonFiniteLoss: return "non-finite-loss";
    case RecoveryKind::kNonFiniteGradient: return "non-finite-gradient";
    case RecoveryKind::kNonFiniteParam: return "non-finite-param";
    case RecoveryKind::kNonFiniteArchLogit: return "non-finite-arch-logit";
  }
  return "unknown";
}

// One recovery action taken by a training/search loop: what tripped the
// sentinel, where (epoch/step are deterministic, wall-clock-free), and the
// learning-rate scale in effect after the backoff.
struct RecoveryEvent {
  int epoch = 0;
  int64_t step = 0;
  RecoveryKind kind = RecoveryKind::kNonFiniteLoss;
  double lr_scale_after = 1.0;
  std::string detail;  // offending tensor name, or "loss"
};

inline bool all_finite(std::span<const float> v) {
  for (float x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace mn::reliability
