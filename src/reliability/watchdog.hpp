// Streaming-pipeline watchdog: graceful degradation for the always-on KWS
// path.
//
// A deployed wake-word engine runs for months; a single mic glitch or SRAM
// fault must not poison the MFCC overlap buffer or the posterior smoothing
// window forever. The watchdog sits between the audio source, the
// `dsp::StreamingMfcc` front-end, and the `dsp::PosteriorSmoother` decision
// layer: it detects NaN/Inf frames and stuck posteriors, resets the affected
// stage (dropping the corrupt state), records the event, and lets the
// pipeline keep producing valid detections afterwards.
#pragma once

#include <span>
#include <vector>

#include "dsp/streaming.hpp"

namespace mn::reliability {

struct WatchdogConfig {
  // Consecutive identical posterior vectors before the smoother is declared
  // stuck (a healthy model's posteriors jitter every frame; bit-exact
  // repetition for many steps means a frozen front-end or corrupted model).
  int stuck_window = 8;
  float stuck_epsilon = 1e-6f;
};

struct WatchdogStats {
  int64_t frontend_resets = 0;    // StreamingMfcc resets (NaN/Inf audio)
  int64_t smoother_resets = 0;    // PosteriorSmoother resets (NaN or stuck)
  int64_t frames_dropped = 0;     // MFCC frames discarded as corrupt
  int64_t posteriors_dropped = 0; // posterior vectors discarded as corrupt
  int64_t stuck_events = 0;       // stuck-posterior episodes detected
};

class StreamWatchdog {
 public:
  explicit StreamWatchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  // Feeds an audio chunk through the front-end. A chunk containing NaN/Inf
  // samples — or one that causes the front-end to emit a non-finite MFCC
  // frame from previously-buffered poison — triggers a front-end reset
  // (flushing the corrupt overlap buffer) and drops the affected frames.
  // Returns only the finite MFCC frames emitted by this chunk.
  std::vector<std::vector<float>> push_audio(dsp::StreamingMfcc& frontend,
                                             std::span<const float> samples);

  // Validates one posterior vector and feeds it to the smoother. NaN/Inf
  // vectors reset the smoother; `stuck_window` consecutive identical vectors
  // count as a stuck episode and also reset it. Returns the smoothed
  // detection (class index) or -1.
  int push_posteriors(dsp::PosteriorSmoother& smoother,
                      std::span<const float> probs);

  const WatchdogStats& stats() const { return stats_; }

 private:
  WatchdogConfig cfg_;
  WatchdogStats stats_;
  std::vector<float> last_probs_;
  int identical_run_ = 0;
};

}  // namespace mn::reliability
