// Streaming-pipeline watchdog: graceful degradation for the always-on KWS
// path.
//
// A deployed wake-word engine runs for months; a single mic glitch or SRAM
// fault must not poison the MFCC overlap buffer or the posterior smoothing
// window forever. The watchdog sits between the audio source, the
// `dsp::StreamingMfcc` front-end, and the `dsp::PosteriorSmoother` decision
// layer: it detects NaN/Inf frames and stuck posteriors, resets the affected
// stage (dropping the corrupt state), records the event, and lets the
// pipeline keep producing valid detections afterwards.
//
// The watchdog also keeps a liveness clock: every push advances an int64
// tick counter and every *healthy* output stamps `last_progress()`. With a
// timeout armed (at construction or reconfigured at runtime via
// set_timeout_ticks), `stalled()` reports a stream that has stopped making
// progress — the hook the serving engine (serve::ServingEngine) uses to
// detect dead tenant streams without knowing anything about DSP state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/streaming.hpp"

namespace mn::reliability {

struct WatchdogConfig {
  // Consecutive identical posterior vectors before the smoother is declared
  // stuck (a healthy model's posteriors jitter every frame; bit-exact
  // repetition for many steps means a frozen front-end or corrupted model).
  int64_t stuck_window = 8;
  float stuck_epsilon = 1e-6f;
  // Ticks without progress before stalled() trips; <= 0 disables the check.
  int64_t timeout_ticks = 0;
};

struct WatchdogStats {
  int64_t frontend_resets = 0;    // StreamingMfcc resets (NaN/Inf audio)
  int64_t smoother_resets = 0;    // PosteriorSmoother resets (NaN or stuck)
  int64_t frames_dropped = 0;     // MFCC frames discarded as corrupt
  int64_t posteriors_dropped = 0; // posterior vectors discarded as corrupt
  int64_t stuck_events = 0;       // stuck-posterior episodes detected
};

class StreamWatchdog {
 public:
  explicit StreamWatchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  // Feeds an audio chunk through the front-end. A chunk containing NaN/Inf
  // samples — or one that causes the front-end to emit a non-finite MFCC
  // frame from previously-buffered poison — triggers a front-end reset
  // (flushing the corrupt overlap buffer) and drops the affected frames.
  // Returns only the finite MFCC frames emitted by this chunk.
  std::vector<std::vector<float>> push_audio(dsp::StreamingMfcc& frontend,
                                             std::span<const float> samples);

  // Validates one posterior vector and feeds it to the smoother. NaN/Inf
  // vectors reset the smoother; `stuck_window` consecutive identical vectors
  // count as a stuck episode and also reset it. Returns the smoothed
  // detection (class index) or -1.
  int push_posteriors(dsp::PosteriorSmoother& smoother,
                      std::span<const float> probs);

  // --- liveness clock --------------------------------------------------------
  // All tick arithmetic is int64: an always-on stream at 100 frames/s wraps a
  // 32-bit counter in well under a year, so narrower types are a field bug.
  // advance() moves the clock by `ticks` (an external scheduler driving many
  // watchdogs calls this once per engine step); push_audio/push_posteriors
  // advance by one tick implicitly.
  void advance(int64_t ticks = 1) { tick_ += ticks; }
  int64_t tick() const { return tick_; }

  // Tick of the last healthy output (finite frame emitted / valid posterior
  // accepted), or -1 before any progress. record_progress() stamps it
  // explicitly for callers that validate outputs themselves.
  int64_t last_progress() const { return last_progress_; }
  void record_progress() { last_progress_ = tick_; }

  // Runtime-reconfigurable timeout (not just construction): a serving engine
  // tightens it under load pressure and relaxes it for batch tenants.
  void set_timeout_ticks(int64_t ticks) { cfg_.timeout_ticks = ticks; }
  int64_t timeout_ticks() const { return cfg_.timeout_ticks; }

  // True when the timeout is armed and more than timeout_ticks have elapsed
  // since the last progress (streams that never progressed count from 0).
  bool stalled() const {
    if (cfg_.timeout_ticks <= 0) return false;
    const int64_t since = tick_ - (last_progress_ < 0 ? 0 : last_progress_);
    return since > cfg_.timeout_ticks;
  }

  const WatchdogStats& stats() const { return stats_; }

 private:
  WatchdogConfig cfg_;
  WatchdogStats stats_;
  std::vector<float> last_probs_;
  int64_t identical_run_ = 0;
  int64_t tick_ = 0;
  int64_t last_progress_ = -1;
};

}  // namespace mn::reliability
