#include "reliability/watchdog.hpp"

#include <cmath>

namespace mn::reliability {

namespace {

bool all_finite(std::span<const float> v) {
  for (float x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

std::vector<std::vector<float>> StreamWatchdog::push_audio(
    dsp::StreamingMfcc& frontend, std::span<const float> samples) {
  advance();
  if (!all_finite(samples)) {
    // The chunk itself is poisoned; anything already buffered shares the
    // overlap window with it, so flush the whole front-end state.
    frontend.reset();
    ++stats_.frontend_resets;
    return {};
  }
  std::vector<std::vector<float>> frames = frontend.push(samples);
  // Clean chunk but corrupt output means poison was already buffered
  // (e.g. a fault injected directly into frame memory): reset and keep only
  // the finite frames.
  bool any_bad = false;
  std::vector<std::vector<float>> good;
  good.reserve(frames.size());
  for (auto& f : frames) {
    if (all_finite(f)) {
      good.push_back(std::move(f));
    } else {
      any_bad = true;
      ++stats_.frames_dropped;
    }
  }
  if (any_bad) {
    frontend.reset();
    ++stats_.frontend_resets;
  }
  if (!good.empty()) record_progress();
  return good;
}

int StreamWatchdog::push_posteriors(dsp::PosteriorSmoother& smoother,
                                    std::span<const float> probs) {
  advance();
  if (!all_finite(probs)) {
    ++stats_.posteriors_dropped;
    smoother.reset();
    ++stats_.smoother_resets;
    identical_run_ = 0;
    last_probs_.clear();
    return -1;
  }
  // Stuck detection: bit-identical (within epsilon) posteriors for many
  // consecutive frames mean the upstream pipeline has frozen.
  bool same = last_probs_.size() == probs.size() && !last_probs_.empty();
  if (same) {
    for (size_t i = 0; i < probs.size(); ++i)
      if (std::fabs(probs[i] - last_probs_[i]) > cfg_.stuck_epsilon) {
        same = false;
        break;
      }
  }
  identical_run_ = same ? identical_run_ + 1 : 0;
  last_probs_.assign(probs.begin(), probs.end());
  if (identical_run_ >= cfg_.stuck_window) {
    ++stats_.stuck_events;
    smoother.reset();
    ++stats_.smoother_resets;
    identical_run_ = 0;
    return -1;
  }
  record_progress();
  return smoother.push(probs);
}

}  // namespace mn::reliability
