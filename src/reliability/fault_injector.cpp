#include "reliability/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <unordered_set>
#include <vector>

namespace mn::reliability {

namespace {

// Binomial(n, p) sample via normal approximation for large n*p, exact
// Bernoulli accumulation for small expectations. Flash fault campaigns use
// n up to a few million bits and p in [1e-7, 1e-2], so both branches matter.
int64_t binomial_draw(Rng& rng, int64_t n, double p) {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  if (mean < 32.0) {
    // Poisson-like regime: inversion by sequential Bernoulli on the
    // expectation only (counts, not positions, so this stays O(mean)).
    int64_t k = 0;
    double acc = -std::log(std::max(rng.uniform(), 1e-300)) / p;
    while (acc < static_cast<double>(n)) {
      ++k;
      acc += -std::log(std::max(rng.uniform(), 1e-300)) / p;
    }
    return std::min<int64_t>(k, n);
  }
  const double sd = std::sqrt(mean * (1.0 - p));
  const int64_t k = static_cast<int64_t>(std::llround(rng.normal(mean, sd)));
  return std::clamp<int64_t>(k, 0, n);
}

void flip_position(std::span<uint8_t> data, int64_t pos) {
  data[static_cast<size_t>(pos / 8)] ^= static_cast<uint8_t>(1u << (pos % 8));
}

}  // namespace

ScopedFault::ScopedFault(std::span<uint8_t> target,
                         std::vector<int64_t> positions)
    : target_(target), positions_(std::move(positions)) {}

void ScopedFault::revert() {
  for (int64_t pos : positions_) flip_position(target_, pos);
  positions_.clear();
}

uint64_t FaultInjector::derive_seed(uint64_t base, uint64_t tenant_id) {
  // hash_combine mixes base and id; a SplitMix64 finalizer step then spreads
  // adjacent tenant ids across the full 64-bit space.
  uint64_t z = hash_combine(base, tenant_id) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t FaultInjector::flip_bits(std::span<uint8_t> data, double bit_flip_rate) {
  const int64_t total_bits = static_cast<int64_t>(data.size()) * 8;
  return flip_exact_bits(data, binomial_draw(rng_, total_bits, bit_flip_rate));
}

std::vector<int64_t> FaultInjector::flip_recorded(std::span<uint8_t> data,
                                                  int64_t n_bits) {
  const int64_t total_bits = static_cast<int64_t>(data.size()) * 8;
  n_bits = std::clamp<int64_t>(n_bits, 0, total_bits);
  std::vector<int64_t> positions;
  if (n_bits == 0) return positions;
  positions.reserve(static_cast<size_t>(n_bits));
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(n_bits));
  while (static_cast<int64_t>(chosen.size()) < n_bits) {
    const int64_t pos = rng_.uniform_int(0, total_bits - 1);
    if (!chosen.insert(pos).second) continue;
    flip_position(data, pos);
    positions.push_back(pos);
  }
  stats_.bits_flipped += n_bits;
  return positions;
}

int64_t FaultInjector::flip_exact_bits(std::span<uint8_t> data, int64_t n_bits) {
  return static_cast<int64_t>(flip_recorded(data, n_bits).size());
}

int64_t FaultInjector::flip_bits_once(uint64_t seed, std::span<uint8_t> data,
                                      int64_t n_bits) {
  FaultInjector fi(seed);
  return fi.flip_exact_bits(data, n_bits);
}

ScopedFault FaultInjector::scoped_fault(std::span<uint8_t> data,
                                        int64_t n_bits) {
  return ScopedFault(data, flip_recorded(data, n_bits));
}

int64_t FaultInjector::corrupt_samples(std::span<float> samples, double nan_rate,
                                       double saturate_rate) {
  int64_t corrupted = 0;
  for (float& s : samples) {
    const double u = rng_.uniform();
    if (u < nan_rate) {
      s = std::numeric_limits<float>::quiet_NaN();
      ++corrupted;
    } else if (u < nan_rate + saturate_rate) {
      s = s < 0.f ? -1.f : 1.f;
      ++corrupted;
    }
  }
  stats_.samples_corrupted += corrupted;
  return corrupted;
}

int64_t FaultInjector::inject_nonfinite(std::span<float> values, double nan_rate,
                                        double inf_rate) {
  int64_t poisoned = 0;
  for (float& v : values) {
    const double u = rng_.uniform();
    if (u < nan_rate) {
      v = std::numeric_limits<float>::quiet_NaN();
      ++poisoned;
    } else if (u < nan_rate + inf_rate) {
      v = v < 0.f ? -std::numeric_limits<float>::infinity()
                  : std::numeric_limits<float>::infinity();
      ++poisoned;
    }
  }
  stats_.values_poisoned += poisoned;
  return poisoned;
}

bool FaultInjector::truncate_file(const std::string& path, int64_t keep_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  keep_bytes = std::clamp<int64_t>(keep_bytes, 0,
                                   static_cast<int64_t>(bytes.size()));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), keep_bytes);
  out.close();
  if (out.fail()) return false;
  ++stats_.files_corrupted;
  return true;
}

bool FaultInjector::flip_file_bits(const std::string& path, int64_t n_bits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  flip_exact_bits(bytes, n_bits);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (out.fail()) return false;
  ++stats_.files_corrupted;
  return true;
}

}  // namespace mn::reliability
