// Seeded, deterministic fault injection for deployment-realistic evaluation.
//
// Commodity-MCU deployments fail in ways clean-accuracy benchmarks never see:
// eFlash cells age and flip stored weight bits, SRAM takes soft errors in the
// activation arena, and microphone DMA glitches hand the front-end NaN or
// saturated samples. The FaultInjector reproduces those three fault classes
// against the live memory of an `rt::Interpreter` (weights blob = flash,
// arena = SRAM) or against streaming sample buffers, with SplitMix64-seeded
// determinism so any observed failure replays bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tensor/rng.hpp"

namespace mn::reliability {

struct FaultStats {
  int64_t bits_flipped = 0;
  int64_t samples_corrupted = 0;
  int64_t values_poisoned = 0;   // floats overwritten with NaN/Inf
  int64_t files_corrupted = 0;   // checkpoint/journal files truncated or flipped

  FaultStats& operator+=(const FaultStats& o) {
    bits_flipped += o.bits_flipped;
    samples_corrupted += o.samples_corrupted;
    values_poisoned += o.values_poisoned;
    files_corrupted += o.files_corrupted;
    return *this;
  }
};

// RAII fault: flips chosen bit positions on construction (via
// FaultInjector::scoped_fault) and re-flips the same positions on
// destruction — XOR is self-inverse, so the target bytes are restored
// exactly without snapshotting the (possibly megabytes-large) span. Lets a
// test or chaos harness poison an interpreter's live weights for one invoke
// and guarantee the instance is pristine afterwards even on early returns.
class ScopedFault {
 public:
  ScopedFault() = default;
  ScopedFault(ScopedFault&& o) noexcept { *this = std::move(o); }
  ScopedFault& operator=(ScopedFault&& o) noexcept {
    revert();
    target_ = o.target_;
    positions_ = std::move(o.positions_);
    o.positions_.clear();
    return *this;
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { revert(); }

  // Undoes the fault now (idempotent; the destructor then does nothing).
  void revert();
  int64_t bits_flipped() const { return static_cast<int64_t>(positions_.size()); }

 private:
  friend class FaultInjector;
  ScopedFault(std::span<uint8_t> target, std::vector<int64_t> positions);

  std::span<uint8_t> target_;
  std::vector<int64_t> positions_;  // bit positions currently flipped
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  // The construction seed (derivations below are relative to it).
  uint64_t seed() const { return seed_; }

  // Stateless per-tenant seed derivation: depends only on (base, tenant_id),
  // never on how many draws other tenants made — so a chaos schedule splits
  // into per-tenant streams that replay identically at any thread count and
  // any interleaving. SplitMix64-finalized to decorrelate adjacent ids.
  static uint64_t derive_seed(uint64_t base, uint64_t tenant_id);

  // A fresh injector on the derived stream (does not advance this one's RNG).
  FaultInjector for_tenant(uint64_t tenant_id) const {
    return FaultInjector(derive_seed(seed_, tenant_id));
  }

  // Flips bits in `data` so that each bit is flipped with probability
  // `bit_flip_rate` (sampled as a binomial draw over the whole span, then
  // distinct positions — exact for the rates relevant to flash aging).
  // Returns the number of bits actually flipped.
  int64_t flip_bits(std::span<uint8_t> data, double bit_flip_rate);

  // Flips exactly `n_bits` distinct bit positions in `data` (clamped to the
  // span's bit count).
  int64_t flip_exact_bits(std::span<uint8_t> data, int64_t n_bits);

  // One-shot seeded flip on a throwaway injector — for corruption events
  // that own no injector state, e.g. a chaos plan poisoning a staged OTA
  // image at a scheduled tick. Same positions for the same (seed, span
  // length, n_bits) every time.
  static int64_t flip_bits_once(uint64_t seed, std::span<uint8_t> data,
                                int64_t n_bits);

  // Like flip_exact_bits, but returns an RAII handle that restores the
  // flipped bits when it goes out of scope (or on revert()). `data` must
  // outlive the handle.
  ScopedFault scoped_fault(std::span<uint8_t> data, int64_t n_bits);

  // Mic-glitch model: replaces each sample with NaN (probability `nan_rate`)
  // or full-scale saturation (probability `saturate_rate`). Returns the
  // number of samples corrupted.
  int64_t corrupt_samples(std::span<float> samples, double nan_rate,
                          double saturate_rate = 0.0);

  // Training-side fault: overwrites each value with quiet-NaN (probability
  // `nan_rate`) or +/-Inf (probability `inf_rate`) — models an exploding
  // gradient or a soft error in the optimizer state. Point this at a
  // parameter's gradient span to exercise the Trainer/DNAS divergence
  // sentinel. Returns the number of values poisoned.
  int64_t inject_nonfinite(std::span<float> values, double nan_rate,
                           double inf_rate = 0.0);

  // Power-loss model for checkpoint/journal files: truncates `path` to its
  // first `keep_bytes` bytes in place. Returns false if the file cannot be
  // opened or resized.
  bool truncate_file(const std::string& path, int64_t keep_bytes);

  // Storage-corruption model: flips exactly `n_bits` random bit positions of
  // the file at `path` in place. Returns false on I/O failure.
  bool flip_file_bits(const std::string& path, int64_t n_bits);

  FaultStats stats() const { return stats_; }
  Rng& rng() { return rng_; }

 private:
  // Picks `n_bits` distinct positions (clamped), flips them, records stats.
  std::vector<int64_t> flip_recorded(std::span<uint8_t> data, int64_t n_bits);

  uint64_t seed_ = 0;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace mn::reliability
