// Model family builders: the paper's baselines (DS-CNN S/M/L, MobileNetV2,
// MobileNetV1 person-detection reference, FC autoencoders) and the fixed
// MicroNet instantiations used by the result benches. Every builder produces
// an nn::Graph ready for training (optionally with QAT fake-quant nodes) and
// convertible by rt::convert.
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace mn::models {

enum class ModelSize { kS, kM, kL };
const char* size_name(ModelSize s);

struct BuildOptions {
  uint64_t seed = 1;
  bool qat = true;
  int weight_bits = 8;
  int act_bits = 8;
};

// --- DS-CNN (Zhang et al. 2017, "Hello Edge") --------------------------------

struct DsCnnBlock {
  int64_t channels = 64;
  int64_t stride = 1;
};

struct DsCnnConfig {
  Shape input{49, 10, 1};
  int num_classes = 12;
  int64_t stem_channels = 64;
  int64_t stem_kh = 10, stem_kw = 4, stem_stride = 2;
  std::vector<DsCnnBlock> blocks;
};

nn::Graph build_ds_cnn(const DsCnnConfig& cfg, const BuildOptions& opt);

// Published S/M/L variants for the KWS task.
DsCnnConfig ds_cnn_s();
DsCnnConfig ds_cnn_m();
DsCnnConfig ds_cnn_l();

// --- MobileNetV2 (Sandler et al. 2018) ---------------------------------------

struct IbnBlock {
  int64_t expansion_channels = 0;  // width of the 1x1 expansion
  int64_t out_channels = 0;        // width of the 1x1 projection
  int64_t stride = 1;
};

struct MobileNetV2Config {
  Shape input{50, 50, 1};
  int num_classes = 2;
  int64_t stem_channels = 32;
  int64_t stem_stride = 2;
  std::vector<IbnBlock> blocks;
  int64_t head_channels = 1280;  // final 1x1 conv before pooling (0 = none)
};

nn::Graph build_mobilenet_v2(const MobileNetV2Config& cfg, const BuildOptions& opt);

// Standard MobileNetV2 scaled by a width multiplier.
MobileNetV2Config mobilenet_v2(double width_mult, Shape input, int num_classes);

// KWS baselines built by stacking IBN blocks (paper Fig. 7).
MobileNetV2Config mbv2_kws(ModelSize size);

// --- MobileNetV1 (TFLM person-detection reference) ---------------------------

struct MobileNetV1Config {
  Shape input{96, 96, 1};
  int num_classes = 2;
  double width_mult = 0.25;
};

nn::Graph build_mobilenet_v1(const MobileNetV1Config& cfg, const BuildOptions& opt);

// --- Fully-connected autoencoder (AD baseline, Purohit et al. 2019) ----------

struct FcAeConfig {
  int64_t input_dim = 640;  // 10 frames x 64 mel bins
  int64_t hidden = 128;     // 512 for the "wide" variant
  int64_t bottleneck = 8;
  int num_hidden_layers = 4;  // on each side of the bottleneck
};

// Autoencoder graph: output feature = input_dim reconstruction (train with
// MSE via nn::Graph::backward on the squared-error gradient).
nn::Graph build_fc_autoencoder(const FcAeConfig& cfg, const BuildOptions& opt);

// --- MicroNet instantiations -------------------------------------------------
// Architectures in the shape our DNAS discovers (width-searched DS-CNN /
// MobileNetV2 backbones), with channel configurations calibrated to the
// footprints reported in the paper's Table 4.

DsCnnConfig micronet_kws(ModelSize size);
MobileNetV2Config micronet_vww(ModelSize size);  // S and M only (paper Fig. 6)
DsCnnConfig micronet_ad(ModelSize size);

// The 4-bit KWS MicroNet (Table 2): larger than KWS-S but deployable on the
// small MCU thanks to int4 weights/activations.
DsCnnConfig micronet_kws_int4();

// MobileNetV2-0.5 anomaly-detection baseline (Giri et al. 2020): consumes
// 64x64 spectrograms (pre-downsampling resolution), full-resolution stem.
MobileNetV2Config mbv2_ad_baseline();

// VWW comparison models. The originals are not open in a buildable form, so
// these are IBN-stack stand-ins calibrated to the footprints the paper
// measured (Table 4): small flash but activation-hungry, hence deployable
// only on the largest MCU — the failure mode Fig. 8 highlights.
MobileNetV2Config proxylessnas_vww();  // ~309 KB flash / ~350 KB SRAM
MobileNetV2Config msnet_vww();         // ~264 KB flash / ~413 KB SRAM

// AD configs downsample to 4x4 before pooling (strides on the last blocks).
// All AD models take 32x32x1 inputs and emit 4 machine-ID classes.

// Retargets every quantizer in a QAT graph to new bit widths (progressive
// quantization: train at 8 bits, then finetune at 4). Touches FakeQuant
// nodes and the weight quantizers of conv / depthwise / dense layers.
void set_graph_quantization(nn::Graph& graph, int weight_bits, int act_bits);

}  // namespace mn::models
