#include "models/backbones.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mn::models {

void set_graph_quantization(nn::Graph& graph, int weight_bits, int act_bits) {
  for (int id = 0; id < graph.num_nodes(); ++id) {
    nn::Node& node = graph.node(id);
    if (auto* fq = dynamic_cast<nn::FakeQuant*>(&node)) fq->set_bits(act_bits);
    else if (auto* cv = dynamic_cast<nn::Conv2D*>(&node)) cv->set_weight_bits(weight_bits);
    else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(&node)) dw->set_weight_bits(weight_bits);
    else if (auto* fc = dynamic_cast<nn::Dense*>(&node)) fc->set_weight_bits(weight_bits);
  }
}

const char* size_name(ModelSize s) {
  switch (s) {
    case ModelSize::kS: return "S";
    case ModelSize::kM: return "M";
    case ModelSize::kL: return "L";
  }
  return "?";
}

namespace {

// Round to the nearest multiple of 4 (the CMSIS-NN fast-path constraint the
// paper imposes on searched channel counts).
int64_t round4(double c) {
  return std::max<int64_t>(4, static_cast<int64_t>(std::lround(c / 4.0)) * 4);
}

int quantized_input(nn::GraphBuilder& b, Shape input, const BuildOptions& opt) {
  int x = b.input(input);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  return x;
}

int logits_head(nn::GraphBuilder& b, int x, int num_classes,
                const BuildOptions& opt) {
  x = b.global_avg_pool(x);
  x = b.dense(x, num_classes);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  return x;
}

}  // namespace

// -------------------------------------------------------------- DS-CNN ----

nn::Graph build_ds_cnn(const DsCnnConfig& cfg, const BuildOptions& opt) {
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);
  int x = quantized_input(b, cfg.input, opt);
  nn::Conv2DOptions stem;
  stem.out_channels = cfg.stem_channels;
  stem.kh = cfg.stem_kh;
  stem.kw = cfg.stem_kw;
  stem.stride = cfg.stem_stride;
  x = b.conv_bn_relu(x, stem);
  for (const DsCnnBlock& blk : cfg.blocks) {
    nn::DepthwiseConv2DOptions dw;
    dw.kh = dw.kw = 3;
    dw.stride = blk.stride;
    x = b.dwconv_bn_relu(x, dw);
    nn::Conv2DOptions pw;
    pw.out_channels = blk.channels;
    pw.kh = pw.kw = 1;
    x = b.conv_bn_relu(x, pw);
  }
  x = logits_head(b, x, cfg.num_classes, opt);
  return b.build(x);
}

DsCnnConfig ds_cnn_s() {
  DsCnnConfig c;
  c.stem_channels = 64;
  c.blocks = {{64, 1}, {64, 1}, {64, 1}, {64, 1}};
  return c;
}

DsCnnConfig ds_cnn_m() {
  DsCnnConfig c;
  c.stem_channels = 172;
  c.blocks = {{172, 1}, {172, 1}, {172, 1}, {172, 1}};
  return c;
}

DsCnnConfig ds_cnn_l() {
  DsCnnConfig c;
  c.stem_channels = 276;
  c.blocks = {{276, 1}, {276, 1}, {276, 1}, {276, 1}, {276, 1}};
  return c;
}

// --------------------------------------------------------- MobileNetV2 ----

nn::Graph build_mobilenet_v2(const MobileNetV2Config& cfg, const BuildOptions& opt) {
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);
  int x = quantized_input(b, cfg.input, opt);
  nn::Conv2DOptions stem;
  stem.out_channels = cfg.stem_channels;
  stem.kh = stem.kw = 3;
  stem.stride = cfg.stem_stride;
  x = b.conv_bn_relu(x, stem);
  for (const IbnBlock& blk : cfg.blocks) {
    const Shape in_shape = b.shape(x);
    const int64_t in_ch = in_shape.dim(2);
    int y = x;
    // 1x1 expansion (skipped when expansion == in_ch, i.e. expand ratio 1).
    if (blk.expansion_channels != in_ch) {
      nn::Conv2DOptions e;
      e.out_channels = blk.expansion_channels;
      e.kh = e.kw = 1;
      y = b.conv_bn_relu(y, e);
    }
    nn::DepthwiseConv2DOptions dw;
    dw.kh = dw.kw = 3;
    dw.stride = blk.stride;
    y = b.dwconv_bn_relu(y, dw);
    // Linear 1x1 projection (no activation).
    nn::Conv2DOptions p;
    p.out_channels = blk.out_channels;
    p.kh = p.kw = 1;
    p.use_bias = false;
    y = b.conv2d(y, p);
    y = b.batch_norm(y);
    if (opt.qat) y = b.fake_quant(y, opt.act_bits);
    if (blk.stride == 1 && blk.out_channels == in_ch) {
      y = b.add(x, y);
      if (opt.qat) y = b.fake_quant(y, opt.act_bits);
    }
    x = y;
  }
  if (cfg.head_channels > 0) {
    nn::Conv2DOptions head;
    head.out_channels = cfg.head_channels;
    head.kh = head.kw = 1;
    x = b.conv_bn_relu(x, head);
  }
  x = logits_head(b, x, cfg.num_classes, opt);
  return b.build(x);
}

MobileNetV2Config mobilenet_v2(double width_mult, Shape input, int num_classes) {
  MobileNetV2Config c;
  c.input = input;
  c.num_classes = num_classes;
  c.stem_channels = round4(32 * width_mult);
  // (expansion ratio, out channels, repeats, first stride) per the paper.
  struct Stage {
    int t;
    int ch;
    int n;
    int s;
  };
  const Stage stages[] = {{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2},
                          {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  int64_t in_ch = c.stem_channels;
  for (const Stage& st : stages) {
    const int64_t out = round4(st.ch * width_mult);
    for (int i = 0; i < st.n; ++i) {
      IbnBlock blk;
      blk.expansion_channels = st.t == 1 ? in_ch : round4(static_cast<double>(in_ch) * st.t);
      blk.out_channels = out;
      blk.stride = i == 0 ? st.s : 1;
      c.blocks.push_back(blk);
      in_ch = out;
    }
  }
  c.head_channels = width_mult >= 1.0 ? round4(1280 * width_mult) : 1280;
  return c;
}

MobileNetV2Config mbv2_kws(ModelSize size) {
  // IBN stacks at full 49x10 resolution in the early stages: accurate but
  // memory-hungry (the paper's Fig. 7 shows them dominated by MicroNets on
  // SRAM; the L variant does not fit any target MCU).
  MobileNetV2Config c;
  c.input = Shape{49, 10, 1};
  c.num_classes = 12;
  c.stem_stride = 1;
  switch (size) {
    case ModelSize::kS:
      c.stem_channels = 32;
      c.blocks = {{32, 24, 1}, {144, 24, 1}, {144, 32, 2}, {192, 32, 1}, {192, 48, 2}};
      c.head_channels = 256;
      break;
    case ModelSize::kM:
      c.stem_channels = 40;
      c.blocks = {{40, 28, 1},  {168, 40, 1}, {240, 40, 1},
                  {240, 56, 2}, {336, 56, 1}, {336, 80, 2}},
      c.head_channels = 384;
      break;
    case ModelSize::kL:
      c.stem_channels = 96;
      c.blocks = {{96, 64, 1},  {576, 96, 1}, {576, 128, 2}, {768, 128, 1},
                  {768, 160, 2}, {960, 160, 1}},
      c.head_channels = 512;
      break;
  }
  return c;
}

// --------------------------------------------------------- MobileNetV1 ----

nn::Graph build_mobilenet_v1(const MobileNetV1Config& cfg, const BuildOptions& opt) {
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);
  int x = quantized_input(b, cfg.input, opt);
  auto ch = [&](int base) { return round4(base * cfg.width_mult); };
  nn::Conv2DOptions stem;
  stem.out_channels = ch(32);
  stem.kh = stem.kw = 3;
  stem.stride = 2;
  x = b.conv_bn_relu(x, stem);
  struct Blk {
    int out;
    int stride;
  };
  const Blk blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                        {512, 1}, {1024, 2}, {1024, 1}};
  for (const Blk& blk : blocks) {
    nn::DepthwiseConv2DOptions dw;
    dw.kh = dw.kw = 3;
    dw.stride = blk.stride;
    x = b.dwconv_bn_relu(x, dw);
    nn::Conv2DOptions pw;
    pw.out_channels = ch(blk.out);
    pw.kh = pw.kw = 1;
    x = b.conv_bn_relu(x, pw);
  }
  x = logits_head(b, x, cfg.num_classes, opt);
  return b.build(x);
}

// ------------------------------------------------ FC autoencoder (AD) -----

nn::Graph build_fc_autoencoder(const FcAeConfig& cfg, const BuildOptions& opt) {
  nn::GraphBuilder b(opt.seed);
  b.set_qat(opt.qat, opt.weight_bits, opt.act_bits);
  int x = quantized_input(b, Shape{cfg.input_dim}, opt);
  auto hidden = [&](int i, int64_t units) {
    (void)i;
    x = b.dense(x, units);
    x = b.relu(x);
    if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  };
  for (int i = 0; i < cfg.num_hidden_layers; ++i) hidden(i, cfg.hidden);
  hidden(-1, cfg.bottleneck);
  for (int i = 0; i < cfg.num_hidden_layers; ++i) hidden(i, cfg.hidden);
  x = b.dense(x, cfg.input_dim);
  if (opt.qat) x = b.fake_quant(x, opt.act_bits);
  return b.build(x);
}

// ------------------------------------------------ MicroNet instantiations --

DsCnnConfig micronet_kws(ModelSize size) {
  // Width-searched DS-CNN backbones; channel configurations calibrated to
  // the footprints in Table 4 (flash 102/163/612 KB, SRAM 53/103/208 KB).
  DsCnnConfig c;
  switch (size) {
    case ModelSize::kS:
      c.stem_channels = 112;
      c.blocks = {{112, 1}, {116, 1}, {128, 1}, {140, 1}, {120, 1}};
      break;
    case ModelSize::kM:
      c.stem_channels = 128;
      c.blocks = {{132, 1}, {144, 1}, {152, 1}, {160, 1}, {160, 1}, {128, 1}};
      break;
    case ModelSize::kL:
      c.stem_channels = 276;
      c.blocks = {{276, 1}, {276, 1}, {276, 1}, {276, 1},
                  {300, 2}, {300, 1}, {300, 1}};
      break;
  }
  return c;
}

DsCnnConfig micronet_kws_int4() {
  // Table 2: the 4-bit model is larger than KWS-M in parameters (290 KB at
  // 4 bits ~= 580 K weights) yet still fits the small MCU.
  DsCnnConfig c;
  c.stem_channels = 212;
  c.blocks = {{212, 1}, {240, 1}, {264, 1}, {264, 1}, {280, 1}, {280, 1}, {244, 1}};
  return c;
}

MobileNetV2Config mbv2_ad_baseline() {
  MobileNetV2Config c = mobilenet_v2(0.6, Shape{64, 64, 1}, 4);
  c.stem_stride = 1;  // 64x64 spectrogram input, hum detail kept at full res
  return c;
}

MobileNetV2Config proxylessnas_vww() {
  // 224x224 RGB input (the standard VWW preprocessing for mobile models):
  // the early high-resolution stages blow past small-MCU SRAM even though
  // the weights are modest.
  MobileNetV2Config c = mobilenet_v2(0.3, Shape{224, 224, 3}, 2);
  c.head_channels = 512;
  return c;
}

MobileNetV2Config msnet_vww() {
  MobileNetV2Config c = mobilenet_v2(0.3, Shape{224, 224, 3}, 2);
  // MSNet's wired cells carry wider early feature maps than ProxylessNAS,
  // pushing its activation peak above the F746ZG but inside the F767ZI.
  c.stem_channels = 12;
  c.head_channels = 384;
  return c;
}

MobileNetV2Config micronet_vww(ModelSize size) {
  switch (size) {
    case ModelSize::kS: {
      // Fig. 6(a): 50x50x1 input, slim IBN stack kept at full resolution in
      // the stem (flash ~217 KB, SRAM ~70 KB, ~16 Mops).
      MobileNetV2Config c = mobilenet_v2(0.25, Shape{50, 50, 1}, 2);
      c.stem_stride = 1;
      c.head_channels = 320;
      return c;
    }
    case ModelSize::kM: {
      // Fig. 6(b): 160x160x1 input; thin early stages keep the 80x80
      // buffers inside the F746ZG arena, widths grow with depth
      // (flash ~855 KB, SRAM ~285 KB, ~230 Mops).
      MobileNetV2Config c;
      c.input = Shape{160, 160, 1};
      c.num_classes = 2;
      c.stem_channels = 12;
      c.stem_stride = 2;
      c.blocks = {{12, 16, 1},   {16, 24, 2},  {56, 32, 1},  {96, 56, 2},
                  {288, 56, 1},  {288, 64, 1}, {384, 96, 2}, {576, 96, 1},
                  {576, 160, 1}, {960, 160, 2}};
      c.head_channels = 640;
      return c;
    }
    case ModelSize::kL:
      throw std::invalid_argument(
          "micronet_vww: no L variant (the paper's medium model already "
          "matches MobileNetV2 accuracy, obviating a large-MCU search)");
  }
  throw std::invalid_argument("micronet_vww: bad size");
}

DsCnnConfig micronet_ad(ModelSize size) {
  // AD backbone (§5.2.3): DS-CNN on 32x32 log-mel patches; the final two
  // blocks use stride 2 so the patch reaches 4x4 before pooling. Calibrated
  // to Table 4 (flash 247/453/442 KB).
  DsCnnConfig c;
  c.input = Shape{32, 32, 1};
  c.num_classes = 4;
  c.stem_kh = 3;
  c.stem_kw = 3;
  switch (size) {
    case ModelSize::kS:
      // Stride-2 stem; moderate widths (flash ~247 KB, SRAM ~114 KB).
      c.stem_stride = 2;
      c.stem_channels = 160;
      c.blocks = {{160, 1}, {160, 1}, {224, 2}, {256, 2}, {256, 1}};
      break;
    case ModelSize::kM:
      // Full-resolution stem: the 32x32 buffers dominate SRAM (~274 KB),
      // widths grow with depth (flash ~453 KB, ~125 Mops).
      c.stem_stride = 1;
      c.stem_channels = 128;
      c.blocks = {{128, 1}, {192, 2}, {256, 1}, {288, 2}, {320, 1}, {320, 2}};
      break;
    case ModelSize::kL:
      // Wider full-resolution stem (SRAM ~383 KB, flash ~442 KB).
      c.stem_stride = 1;
      c.stem_channels = 160;
      c.blocks = {{160, 1}, {192, 2}, {256, 1}, {288, 2}, {320, 1}, {320, 2}};
      break;
  }
  return c;
}

}  // namespace mn::models
