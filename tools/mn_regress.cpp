// mn_regress: the CI perf/memory regression gate.
//
// Usage:
//   mn_regress [--rel-tol F] [--r2-drop F] [--tail-headroom F]
//              [--shed-slack F] [--throughput-drop F] [--promotion-slack F]
//              [--speedup-floor F] [--arena-peak-slack F] [--p999-headroom F]
//              BASELINE CURRENT [BASELINE CURRENT]...
//
// Each (BASELINE, CURRENT) pair is a committed bench/baselines/BENCH_*.json
// and the BENCH_*.json a fresh bench run just wrote. For every pair the gate
// prints a per-metric PASS/FAIL table (rule chosen by metric name — see
// regress_core.hpp) and exits nonzero if any metric fails, naming the
// offenders so the CI log says exactly what regressed.
//
// Wired up as `cmake --build build --target check-regression`, which runs
// the fig2/fig3/fig4/fig5 benches into build/regress/ and then this tool.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.hpp"
#include "regress_core.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: mn_regress [--rel-tol F] [--r2-drop F] "
               "[--tail-headroom F] [--shed-slack F] [--throughput-drop F] "
               "[--promotion-slack F] [--speedup-floor F] "
               "[--arena-peak-slack F] [--p999-headroom F] "
               "BASELINE CURRENT [BASELINE CURRENT]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mn::tools::RegressConfig cfg;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
      cfg.rel_tol = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--r2-drop") == 0 && i + 1 < argc) {
      cfg.r2_drop = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--tail-headroom") == 0 && i + 1 < argc) {
      cfg.tail_headroom = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--shed-slack") == 0 && i + 1 < argc) {
      cfg.shed_slack = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--throughput-drop") == 0 && i + 1 < argc) {
      cfg.throughput_drop = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--promotion-slack") == 0 && i + 1 < argc) {
      cfg.promotion_slack = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--speedup-floor") == 0 && i + 1 < argc) {
      cfg.speedup_floor = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--arena-peak-slack") == 0 && i + 1 < argc) {
      cfg.arena_peak_slack = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--p999-headroom") == 0 && i + 1 < argc) {
      cfg.p999_headroom = std::stod(argv[++i]);
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() || paths.size() % 2 != 0) return usage();

  std::printf("mn_regress: rel-tol %.3f, r2-drop %.3f, %zu pair(s)\n",
              cfg.rel_tol, cfg.r2_drop, paths.size() / 2);

  int total_failures = 0;
  std::vector<std::string> failed_metrics;
  for (size_t i = 0; i + 1 < paths.size(); i += 2) {
    const std::string& base_path = paths[i];
    const std::string& cur_path = paths[i + 1];
    std::string base_text, cur_text;
    mn::tools::RegressResult result;
    mn::tools::JsonValue base_doc, cur_doc;
    mn::tools::JsonParser parser;
    if (!read_file(base_path, &base_text)) {
      result.error = "cannot read baseline " + base_path;
    } else if (!read_file(cur_path, &cur_text)) {
      result.error = "cannot read current " + cur_path;
    } else if (!parser.parse(base_text, &base_doc)) {
      result.error = "baseline " + base_path + ": " + parser.error();
    } else if (!parser.parse(cur_text, &cur_doc)) {
      result.error = "current " + cur_path + ": " + parser.error();
    } else {
      result = mn::tools::compare_reports(base_doc, cur_doc, cfg);
    }
    std::printf("%s", mn::tools::render_table(result).c_str());
    if (!result.error.empty()) {
      ++total_failures;
      failed_metrics.push_back(base_path + " (structural)");
      continue;
    }
    total_failures += result.failures();
    for (const mn::tools::MetricCheck& c : result.checks)
      if (!c.pass) failed_metrics.push_back(result.bench + "/" + c.name);
  }

  if (total_failures == 0) {
    std::printf("mn_regress: all metrics within tolerance\n");
    return 0;
  }
  std::printf("mn_regress: %d metric(s) REGRESSED:\n", total_failures);
  for (const std::string& m : failed_metrics)
    std::printf("  - %s\n", m.c_str());
  return 1;
}
