// Comparison logic for the perf/memory regression gate (tools/mn_regress).
//
// A bench run writes BENCH_<name>.json (see bench::Reporter). The gate diffs
// the scalar "metrics" object of a fresh run against a committed baseline in
// bench/baselines/. Rules are chosen per metric NAME, because the name says
// what kind of quantity it is:
//
//   - byte/count metrics (arena, flash, sram, samples, invokes, ...) are
//     products of the deterministic planner/converter/sampler: any drift is
//     a real change, so they must match EXACTLY.
//   - r2 metrics involve host wall-clock measurements, so they only have to
//     stay above baseline - r2_drop (a lower bound; improving is fine).
//   - tail-latency metrics (p50/p95/p99 measured in host time) gate upward
//     only: getting faster is never a regression, and host timing varies
//     across machines, so the headroom is generous (default 2x baseline).
//     Virtual-tick tails ("..._ticks") are deterministic and stay EXACT.
//   - shed-rate metrics gate upward with a small absolute slack: a serving
//     change that silently sheds more traffic is a regression even when the
//     totals still look healthy.
//   - throughput metrics ("per_min"/"per_sec") gate downward only, with a
//     wide margin for machine variance.
//   - everything else (latency, energy, accuracy proxies) gets a symmetric
//     relative tolerance (default +-10%).
//
// Phases (wall-clock) and "series" arrays are informational and never gated.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "mini_json.hpp"

namespace mn::tools {

struct RegressConfig {
  double rel_tol = 0.10;  // relative tolerance for latency/energy-like metrics
  double r2_drop = 0.30;  // allowed absolute drop for r2 metrics
  // Serving-gate rules (see bench_serving): host-time tails may grow up to
  // (1 + tail_headroom) x baseline; shed rates may exceed baseline by at
  // most shed_slack (absolute); throughput may drop to
  // (1 - throughput_drop) x baseline.
  double tail_headroom = 1.0;
  double shed_slack = 0.02;
  double throughput_drop = 0.60;
  // Rollout-gate rule: a "promotion_tick" metric (the virtual tick a staged
  // rollout completed at) may not grow past baseline + promotion_slack. The
  // quantity is deterministic, so the default slack is zero — a rollout that
  // takes even one extra tick to promote is a scheduling change worth seeing.
  double promotion_slack = 0.0;
  // Backend-gate rule: a "backend_speedup" metric (fast-over-reference ratio
  // measured by bench_kernels_micro) must stay at or above this absolute
  // floor, independent of what the committed baseline recorded — the fast
  // backend has to *earn* its place on every machine the gate runs on.
  double speedup_floor = 2.0;
  // Compiler-gate rule: a "compiled_peak" metric (arena peak_live_bytes of a
  // graph after the compile pipeline, measured by bench_compile) may never
  // grow past baseline + arena_peak_slack. The planner and compiler are
  // deterministic, so the default slack is zero — shrinking the peak further
  // is an improvement the gate waves through; growing it even one byte means
  // a pass stopped firing.
  double arena_peak_slack = 0.0;
  // Flight-recorder gate rule: a "p999" metric measured in host time gets a
  // wider one-sided headroom than p50/p95/p99 — a 1-in-1000 host-time tail
  // is the noisiest quantity the gate sees. ("..._p999_ticks" percentiles
  // are deterministic and stay exact via the tick marker, like every other
  // virtual-time tail.)
  double p999_headroom = 3.0;
};

enum class Rule {
  kExact,
  kRelative,
  kR2LowerBound,
  kTailUpperBound,
  kShedUpperBound,
  kThroughputLowerBound,
  kPromotionUpperBound,
  kSpeedupLowerBound,
  kArenaPeakUpperBound,
  kP999UpperBound,
  kZeroExact,
  kStringEqual,
};

inline const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kExact: return "exact";
    case Rule::kRelative: return "relative";
    case Rule::kR2LowerBound: return "r2-lower-bound";
    case Rule::kTailUpperBound: return "tail-upper-bound";
    case Rule::kShedUpperBound: return "shed-upper-bound";
    case Rule::kThroughputLowerBound: return "throughput-lower";
    case Rule::kPromotionUpperBound: return "promotion-upper";
    case Rule::kSpeedupLowerBound: return "speedup-floor";
    case Rule::kArenaPeakUpperBound: return "peak-upper-bound";
    case Rule::kP999UpperBound: return "p999-upper-bound";
    case Rule::kZeroExact: return "zero-exact";
    case Rule::kStringEqual: return "string";
  }
  return "?";
}

// Substring match helper (metric names are lowercase snake_case by
// convention, so no case folding needed).
inline bool contains(const std::string& s, const char* sub) {
  return s.find(sub) != std::string::npos;
}

// Picks the comparison rule from the metric name alone, so adding a metric
// to a bench automatically gates it with sensible semantics.
inline Rule classify_metric(const std::string& name) {
  // Event-accounting invariants ("every admitted request reaches exactly one
  // terminal event") are absolute: the metric must be zero regardless of
  // what the baseline recorded. Checked first so no other marker (e.g. a
  // "..._count" suffix) can soften the rule.
  if (contains(name, "accounting")) return Rule::kZeroExact;
  if (contains(name, "r2")) return Rule::kR2LowerBound;
  // Checked before the exact markers so a singular "..._promotion_tick" can
  // never be swallowed by a plural marker: a rollout may promote *earlier*
  // than baseline (an improvement), but never later.
  if (contains(name, "promotion_tick")) return Rule::kPromotionUpperBound;
  // Deliberately "backend_speedup", not "speedup": fig3's "anomaly_speedup"
  // is an unrelated simulated ratio that must keep its relative rule.
  if (contains(name, "backend_speedup")) return Rule::kSpeedupLowerBound;
  // Checked before the exact markers: "..._compiled_peak_live_bytes" contains
  // "bytes", but a compiled peak that *shrinks* (a new pass firing) is an
  // improvement, not a drift — only growth may fail the gate. The "uncompiled"
  // guard matters: "uncompiled_peak" contains "compiled_peak" as a substring,
  // and the *uncompiled* plan is deterministic, so it stays bytes-exact.
  if (contains(name, "compiled_peak") && !contains(name, "uncompiled"))
    return Rule::kArenaPeakUpperBound;
  static const char* kExactMarkers[] = {
      "bytes", "flash", "sram", "arena",  "samples", "invokes",
      "layers", "models", "count", "pareto", "size", "epochs",
      "ticks", "violations",
  };
  for (const char* m : kExactMarkers)
    if (contains(name, m)) return Rule::kExact;
  // Host-time order statistics: only growing is a regression. Checked after
  // the exact markers so deterministic "..._ticks" percentiles stay exact.
  // p999 before p99 (substring!) so the extreme tail gets its wider headroom.
  if (contains(name, "p999")) return Rule::kP999UpperBound;
  if (contains(name, "p50") || contains(name, "p95") || contains(name, "p99"))
    return Rule::kTailUpperBound;
  if (contains(name, "shed_rate")) return Rule::kShedUpperBound;
  if (contains(name, "per_min") || contains(name, "per_sec"))
    return Rule::kThroughputLowerBound;
  return Rule::kRelative;
}

struct MetricCheck {
  std::string name;
  Rule rule = Rule::kRelative;
  bool pass = false;
  std::string baseline_str, current_str;
  std::string detail;  // human-readable "why" for failures
};

struct RegressResult {
  std::string bench;  // from the baseline's "bench" field
  std::vector<MetricCheck> checks;
  std::string error;  // non-empty = structural failure (bad file, missing key)

  bool ok() const {
    if (!error.empty()) return false;
    for (const MetricCheck& c : checks)
      if (!c.pass) return false;
    return true;
  }
  int failures() const {
    int n = 0;
    for (const MetricCheck& c : checks) n += c.pass ? 0 : 1;
    return n;
  }
};

inline std::string num_str(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline MetricCheck check_metric(const std::string& name, const JsonValue& base,
                                const JsonValue* cur, const RegressConfig& cfg) {
  MetricCheck c;
  c.name = name;
  if (base.kind == JsonValue::Kind::kString) {
    c.rule = Rule::kStringEqual;
    c.baseline_str = base.str;
    if (!cur) {
      c.detail = "missing from current run";
      return c;
    }
    c.current_str = cur->str;
    c.pass = cur->kind == JsonValue::Kind::kString && cur->str == base.str;
    if (!c.pass) c.detail = "string changed";
    return c;
  }
  c.rule = classify_metric(name);
  c.baseline_str = num_str(base.number);
  if (!cur) {
    c.detail = "missing from current run";
    return c;
  }
  if (!cur->is_number()) {
    c.detail = "current value is not a number";
    return c;
  }
  c.current_str = num_str(cur->number);
  const double b = base.number, v = cur->number;
  switch (c.rule) {
    case Rule::kExact:
      c.pass = v == b;
      if (!c.pass) c.detail = "exact-match metric changed";
      break;
    case Rule::kR2LowerBound:
      c.pass = v >= b - cfg.r2_drop;
      if (!c.pass)
        c.detail = "r2 dropped below baseline - " + num_str(cfg.r2_drop);
      break;
    case Rule::kTailUpperBound:
      c.pass = v <= b * (1.0 + cfg.tail_headroom);
      if (!c.pass)
        c.detail = "tail latency grew past baseline x " +
                   num_str(1.0 + cfg.tail_headroom);
      break;
    case Rule::kShedUpperBound:
      c.pass = v <= b + cfg.shed_slack;
      if (!c.pass)
        c.detail = "shed rate exceeds baseline + " + num_str(cfg.shed_slack);
      break;
    case Rule::kThroughputLowerBound:
      c.pass = v >= b * (1.0 - cfg.throughput_drop);
      if (!c.pass)
        c.detail = "throughput fell below baseline x " +
                   num_str(1.0 - cfg.throughput_drop);
      break;
    case Rule::kPromotionUpperBound:
      c.pass = v <= b + cfg.promotion_slack;
      if (!c.pass)
        c.detail =
            "promotion tick grew past baseline + " + num_str(cfg.promotion_slack);
      break;
    case Rule::kSpeedupLowerBound:
      // Absolute floor, not baseline-relative: the fast backend must deliver
      // at least speedup_floor x on the machine the gate runs on.
      c.pass = v >= cfg.speedup_floor;
      if (!c.pass)
        c.detail = "backend speedup below floor " + num_str(cfg.speedup_floor);
      break;
    case Rule::kArenaPeakUpperBound:
      c.pass = v <= b + cfg.arena_peak_slack;
      if (!c.pass)
        c.detail = "compiled arena peak grew past baseline + " +
                   num_str(cfg.arena_peak_slack);
      break;
    case Rule::kP999UpperBound:
      c.pass = v <= b * (1.0 + cfg.p999_headroom);
      if (!c.pass)
        c.detail = "p999 tail grew past baseline x " +
                   num_str(1.0 + cfg.p999_headroom);
      break;
    case Rule::kZeroExact:
      // Absolute invariant, baseline-independent: any non-zero value means a
      // request was lost or double-terminated by the serving engine.
      c.pass = v == 0.0;
      if (!c.pass) c.detail = "accounting invariant violated (must be 0)";
      break;
    case Rule::kRelative: {
      const double denom = std::fabs(b) > 0 ? std::fabs(b) : 1.0;
      const double rel = std::fabs(v - b) / denom;
      c.pass = rel <= cfg.rel_tol;
      c.detail = "rel-delta " + num_str(rel) +
                 (c.pass ? "" : " exceeds tol " + num_str(cfg.rel_tol));
      break;
    }
    case Rule::kStringEqual: break;  // handled above
  }
  return c;
}

// Diffs current against baseline. Both must be parsed BENCH_*.json documents
// with a "metrics" object. Every baseline metric must be present and within
// rule in the current run; metrics only present in the current run are
// reported as informational passes (they become gated once the baseline is
// regenerated).
inline RegressResult compare_reports(const JsonValue& baseline,
                                     const JsonValue& current,
                                     const RegressConfig& cfg) {
  RegressResult r;
  if (const JsonValue* b = baseline.find("bench")) r.bench = b->str;
  const JsonValue* bm = baseline.find("metrics");
  const JsonValue* cm = current.find("metrics");
  if (!bm || !bm->is_object()) {
    r.error = "baseline has no \"metrics\" object";
    return r;
  }
  if (!cm || !cm->is_object()) {
    r.error = "current run has no \"metrics\" object";
    return r;
  }
  for (const auto& [name, base] : bm->object)
    r.checks.push_back(check_metric(name, base, cm->find(name), cfg));
  for (const auto& [name, cur] : cm->object) {
    if (bm->find(name)) continue;
    MetricCheck c;
    c.name = name;
    c.rule = classify_metric(name);
    c.pass = true;
    c.baseline_str = "(new)";
    c.current_str = cur.is_number() ? num_str(cur.number) : cur.str;
    c.detail = "not in baseline; informational";
    r.checks.push_back(std::move(c));
  }
  return r;
}

// Renders the per-metric table mn_regress prints for one bench pair.
inline std::string render_table(const RegressResult& r) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "== %s ==\n",
                r.bench.empty() ? "(unnamed bench)" : r.bench.c_str());
  out += line;
  if (!r.error.empty()) {
    out += "  ERROR: " + r.error + "\n";
    return out;
  }
  std::snprintf(line, sizeof(line), "  %-34s %-15s %13s %13s  %s\n", "metric",
                "rule", "baseline", "current", "result");
  out += line;
  for (const MetricCheck& c : r.checks) {
    std::snprintf(line, sizeof(line), "  %-34s %-15s %13s %13s  %s%s%s\n",
                  c.name.c_str(), rule_name(c.rule), c.baseline_str.c_str(),
                  c.current_str.c_str(), c.pass ? "PASS" : "FAIL",
                  c.detail.empty() ? "" : " - ", c.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace mn::tools
