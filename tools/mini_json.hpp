// Minimal recursive-descent JSON reader for the regression gate.
//
// Scope: exactly what BENCH_*.json / TRACE_*.json need — objects, arrays,
// numbers, strings (with the escapes our writers emit), booleans, null.
// It is a validating reader for *our own* output files, not a general JSON
// library; on malformed input parse() returns false with a position-stamped
// error message instead of throwing.
#pragma once

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace mn::tools {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved separately so reports read in file order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  // Parses `text` into *out. Returns false and fills error() on failure;
  // trailing garbage after the top-level value is an error.
  bool parse(const std::string& text, JsonValue* out) {
    text_ = &text;
    pos_ = 0;
    error_.clear();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text.size()) return fail("trailing characters after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& why) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos_);
    error_ = why + buf;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_->size() &&
           std::isspace(static_cast<unsigned char>((*text_)[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_->size() && (*text_)[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word, JsonValue* out, JsonValue::Kind kind, bool b) {
    const std::string w(word);
    if (text_->compare(pos_, w.size(), w) != 0)
      return fail("unrecognized literal");
    pos_ += w.size();
    out->kind = kind;
    out->boolean = b;
    return true;
  }

  bool string_body(std::string* out) {
    // Caller consumed the opening quote.
    out->clear();
    while (pos_ < text_->size()) {
      const char c = (*text_)[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_->size()) break;
      const char esc = (*text_)[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_->size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = (*text_)[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Our writers only emit \u00xx for control bytes; decode the
          // low byte and accept (but do not UTF-8-encode) anything wider.
          out->push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_->size()) return fail("unexpected end of input");
    const char c = (*text_)[pos_];
    switch (c) {
      case '{': return object_body(out);
      case '[': return array_body(out);
      case '"':
        ++pos_;
        out->kind = JsonValue::Kind::kString;
        return string_body(&out->str);
      case 't': return literal("true", out, JsonValue::Kind::kBool, true);
      case 'f': return literal("false", out, JsonValue::Kind::kBool, false);
      case 'n': return literal("null", out, JsonValue::Kind::kNull, false);
      default: return number_body(out);
    }
  }

  bool number_body(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_->size() && ((*text_)[pos_] == '-' || (*text_)[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_->size() &&
             std::isdigit(static_cast<unsigned char>((*text_)[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_->size() && (*text_)[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_->size() && ((*text_)[pos_] == 'e' || (*text_)[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_->size() && ((*text_)[pos_] == '-' || (*text_)[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) return fail("expected a value");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_->substr(start, pos_ - start));
    return true;
  }

  bool array_body(JsonValue* out) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool object_body(JsonValue* out) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      if (!consume('"')) return fail("expected string key in object");
      std::string key;
      if (!string_body(&key)) return false;
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  const std::string* text_ = nullptr;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace mn::tools
